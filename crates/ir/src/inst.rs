//! Instructions, operands, and terminators.

use crate::module::{FuncId, GlobalId, SlotId};
use crate::types::StructId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register, local to one function.
///
/// Registers model SSA-ish temporaries that live in the CPU: the BASTION
/// threat model lets attackers corrupt *memory*, not registers, so values in
/// registers are authoritative while values in frame slots / globals are
/// corruptible. This mirrors how the paper compares "the register (actual)
/// argument value" against shadow memory (§7.4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Reg(pub u32);

impl Reg {
    /// Index into the frame's register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A value operand: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(i64),
}

impl Operand {
    /// The register if this operand reads one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate if this operand is constant.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            Operand::Reg(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Binary arithmetic / bitwise operations on 64-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero traps the VM.
    Div,
    /// Signed remainder; division by zero traps the VM.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Logical (unsigned) shift right.
    Shr,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// Comparison operations producing 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Width {
    /// One byte, zero-extended on load.
    W8,
    /// A full 64-bit word.
    W64,
}

impl Width {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W64 => 8,
        }
    }
}

/// A reference to a function by id (the printer resolves names).
pub type FuncRef = FuncId;

/// The callee of a [`Inst::Call`].
///
/// The direct/indirect split is the raw material of the paper's **Call-Type
/// context** (§3.1): the compiler classifies each system call as
/// directly-callable and/or indirectly-callable according to how its stub
/// appears at callsites and whether its address is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Callee {
    /// A direct call to a known function.
    Direct(FuncRef),
    /// An indirect call through a code pointer held in an operand.
    Indirect(Operand),
}

/// BASTION runtime library intrinsics (paper Table 2).
///
/// These are inserted by the `bastion-compiler` instrumentation pass and are
/// never written by the front-end. At runtime the VM executes them inline
/// (the paper inlines all library functions "to maximize performance"),
/// updating the shadow-memory hash table that the monitor later consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntrinsicOp {
    /// `ctx_write_mem(p, size)` — refresh the shadow copy of the sensitive
    /// variable at address `p` (operand) covering `size` bytes.
    CtxWriteMem {
        /// Address of the sensitive variable.
        addr: Operand,
        /// Bytes covered (1..=8 per entry; larger objects use several calls).
        size: u32,
    },
    /// `ctx_bind_mem_X(p)` — bind the memory-backed variable at `p` to
    /// argument position `pos` (1-based, as in the paper) of the next call.
    CtxBindMem {
        /// 1-based argument position.
        pos: u8,
        /// Address of the bound variable.
        addr: Operand,
    },
    /// `ctx_bind_const_X(c)` — bind constant `value` to argument position
    /// `pos` of the next call.
    CtxBindConst {
        /// 1-based argument position.
        pos: u8,
        /// Expected constant value.
        value: i64,
    },
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = src`
    Mov { dst: Reg, src: Operand },
    /// `dst = a <op> b`
    Bin {
        dst: Reg,
        op: BinOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = (a <op> b) as 0/1`
    Cmp {
        dst: Reg,
        op: CmpOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = *(addr)` with the given width.
    Load {
        dst: Reg,
        addr: Operand,
        width: Width,
    },
    /// `*(addr) = src` with the given width.
    Store {
        addr: Operand,
        src: Operand,
        width: Width,
    },
    /// `dst = &frame_slot` — address of a local variable in the current frame.
    FrameAddr { dst: Reg, slot: SlotId },
    /// `dst = &global`.
    GlobalAddr { dst: Reg, global: GlobalId },
    /// `dst = &function` — takes the address of a function. This is what
    /// makes the target *address-taken* for call-type classification.
    FuncAddr { dst: Reg, func: FuncRef },
    /// `dst = base + offsetof(struct, field)` — field-sensitive address
    /// computation (GEP analogue).
    FieldAddr {
        dst: Reg,
        base: Operand,
        struct_id: StructId,
        field: u32,
    },
    /// `dst = base + index * elem_size` — array indexing.
    IndexAddr {
        dst: Reg,
        base: Operand,
        elem_size: u64,
        index: Operand,
    },
    /// A function call. Arguments are passed in the VM's argument registers
    /// and spilled into the callee's parameter slots (clang `-O0` style), so
    /// parameters are memory-backed and corruptible, as the paper requires.
    Call {
        dst: Option<Reg>,
        callee: Callee,
        args: Vec<Operand>,
    },
    /// The `syscall` machine instruction. Appears only inside
    /// [`crate::FuncKind::SyscallStub`] bodies; `args` forward the stub's
    /// parameters into the kernel's argument registers.
    Syscall {
        dst: Reg,
        nr: u32,
        args: Vec<Operand>,
    },
    /// A BASTION instrumentation intrinsic (see [`IntrinsicOp`]).
    Intrinsic(IntrinsicOp),
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::FrameAddr { dst, .. }
            | Inst::GlobalAddr { dst, .. }
            | Inst::FuncAddr { dst, .. }
            | Inst::FieldAddr { dst, .. }
            | Inst::IndexAddr { dst, .. }
            | Inst::Syscall { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::Intrinsic(_) => None,
        }
    }

    /// All operands read by this instruction.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Inst::Mov { src, .. } => vec![*src],
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => vec![*a, *b],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, src, .. } => vec![*addr, *src],
            Inst::FrameAddr { .. } | Inst::GlobalAddr { .. } | Inst::FuncAddr { .. } => vec![],
            Inst::FieldAddr { base, .. } => vec![*base],
            Inst::IndexAddr { base, index, .. } => vec![*base, *index],
            Inst::Call { callee, args, .. } => {
                let mut v = Vec::with_capacity(args.len() + 1);
                if let Callee::Indirect(op) = callee {
                    v.push(*op);
                }
                v.extend(args.iter().copied());
                v
            }
            Inst::Syscall { args, .. } => args.clone(),
            Inst::Intrinsic(op) => match op {
                IntrinsicOp::CtxWriteMem { addr, .. } | IntrinsicOp::CtxBindMem { addr, .. } => {
                    vec![*addr]
                }
                IntrinsicOp::CtxBindConst { .. } => vec![],
            },
        }
    }

    /// Whether this is any kind of call instruction (used when counting
    /// "application callsites" for Table 5).
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }
}

/// A block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(crate::module::BlockId),
    /// Conditional branch: non-zero takes `then_`, zero takes `else_`.
    Br {
        cond: Operand,
        then_: crate::module::BlockId,
        else_: crate::module::BlockId,
    },
    /// Return from the function, optionally with a value.
    Ret(Option<Operand>),
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<crate::module::BlockId> {
        match self {
            Terminator::Jmp(b) => vec![*b],
            Terminator::Br { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Ret(_) => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::BlockId;

    #[test]
    fn operand_conversions() {
        let r: Operand = Reg(3).into();
        assert_eq!(r.as_reg(), Some(Reg(3)));
        assert_eq!(r.as_imm(), None);
        let i: Operand = 42i64.into();
        assert_eq!(i.as_imm(), Some(42));
        assert_eq!(i.as_reg(), None);
    }

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            dst: Reg(2),
            op: BinOp::Add,
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(1),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.uses().len(), 2);

        let s = Inst::Store {
            addr: Operand::Reg(Reg(0)),
            src: Operand::Reg(Reg(1)),
            width: Width::W64,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses().len(), 2);
    }

    #[test]
    fn indirect_call_uses_include_target() {
        let c = Inst::Call {
            dst: None,
            callee: Callee::Indirect(Operand::Reg(Reg(5))),
            args: vec![Operand::Imm(1)],
        };
        assert_eq!(c.uses(), vec![Operand::Reg(Reg(5)), Operand::Imm(1)]);
        assert!(c.is_call());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
        assert_eq!(Terminator::Jmp(BlockId(3)).successors(), vec![BlockId(3)]);
        let br = Terminator::Br {
            cond: Operand::Imm(1),
            then_: BlockId(1),
            else_: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::W64.bytes(), 8);
    }
}
