//! # bastion-ir
//!
//! The intermediate representation used by the BASTION reproduction.
//!
//! The paper's prototype implements its analyses and instrumentation as an
//! LLVM module pass. This crate provides the equivalent substrate: a small,
//! word-oriented, register-machine IR that exposes exactly the objects the
//! BASTION pass inspects —
//!
//! * **call instructions** with an explicit direct/indirect distinction
//!   ([`Callee`]), so call-type classification (§6.1 of the paper) is
//!   expressible;
//! * **address-taken functions** ([`Inst::FuncAddr`]), which is what makes a
//!   system call *indirectly-callable*;
//! * **memory-backed variables** (frame slots, globals, struct fields reached
//!   through [`Inst::FieldAddr`]) with explicit `load`/`store`, so the
//!   field-sensitive use-def analysis (§6.3.3) has real locations to trace;
//! * **system call stubs** ([`FuncKind::SyscallStub`]) standing in for the
//!   libc wrappers that execute the `syscall` instruction;
//! * **instrumentation intrinsics** ([`Inst::Intrinsic`]) mirroring the
//!   BASTION runtime library API of Table 2 (`ctx_write_mem`,
//!   `ctx_bind_mem_X`, `ctx_bind_const_X`).
//!
//! A [`Module`] is produced either by the MiniC front-end (`bastion-minic`)
//! or programmatically through [`build::ModuleBuilder`], then analysed by
//! `bastion-analysis`, instrumented by `bastion-compiler`, laid out in a
//! virtual address space by [`layout::CodeLayout`], and executed by
//! `bastion-vm`.
//!
//! ```
//! use bastion_ir::build::ModuleBuilder;
//! use bastion_ir::{Operand, Ty};
//!
//! # fn main() -> Result<(), bastion_ir::ValidateError> {
//! let mut mb = ModuleBuilder::new("demo");
//! let getpid = mb.declare_syscall_stub("getpid", 39, 0);
//! let mut f = mb.function("main", &[], Ty::I64);
//! let r = f.call_direct(getpid, &[]);
//! f.ret(Some(Operand::Reg(r)));
//! f.finish();
//! let module = mb.finish();
//! module.validate()?;
//! # Ok(())
//! # }
//! ```

pub mod build;
pub mod inst;
pub mod layout;
pub mod module;
pub mod printer;
pub mod sysno;
pub mod types;
pub mod validate;

pub use inst::{BinOp, Callee, CmpOp, FuncRef, Inst, IntrinsicOp, Operand, Reg, Terminator, Width};
pub use layout::{CodeAddr, CodeLayout, InstLoc, CALL_SIZE};
pub use module::{
    Block, BlockId, FuncId, FuncKind, Function, Global, GlobalId, GlobalInit, Local, Module, Param,
    SlotId,
};
pub use types::{StructDef, StructId, Ty};
pub use validate::ValidateError;
