//! Ergonomic construction of modules and functions.
//!
//! [`ModuleBuilder`] assembles the module-level tables (structs, globals,
//! functions, syscall stubs); [`FunctionBuilder`] assembles one function's
//! blocks and instructions. Functions may be *declared* first (reserving a
//! [`FuncId`] so call instructions can reference code defined later) and
//! *defined* afterwards, which is how the MiniC front-end lowers mutually
//! recursive programs.

use crate::inst::{BinOp, Callee, CmpOp, Inst, Operand, Reg, Terminator, Width};
use crate::module::{
    Block, BlockId, FuncId, FuncKind, Function, Global, GlobalId, GlobalInit, Local, Module, Param,
    SlotId,
};
use crate::types::{StructDef, StructId, Ty};

/// Builds a [`Module`].
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates a builder for an empty module named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Adds a struct definition and returns its id.
    pub fn struct_def(&mut self, def: StructDef) -> StructId {
        self.module.structs.push(def);
        StructId(self.module.structs.len() as u32 - 1)
    }

    /// Adds a global variable.
    pub fn global(&mut self, name: impl Into<String>, ty: Ty, init: GlobalInit) -> GlobalId {
        self.module.globals.push(Global {
            name: name.into(),
            ty,
            init,
        });
        GlobalId(self.module.globals.len() as u32 - 1)
    }

    /// Adds a NUL-terminated string constant global and returns its id.
    pub fn global_str(&mut self, name: impl Into<String>, s: &str) -> GlobalId {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        let len = bytes.len() as u64;
        self.global(
            name,
            Ty::Array(Box::new(Ty::I8), len),
            GlobalInit::Bytes(bytes),
        )
    }

    /// Declares a libc-style syscall wrapper. Its auto-generated body loads
    /// the spilled parameters back out of the frame and executes the
    /// `syscall` instruction — reading from *memory* slots so that classic
    /// return-into-libc attacks (which enter the stub without a real call,
    /// inheriting attacker-controlled stack contents) behave faithfully.
    pub fn declare_syscall_stub(&mut self, name: impl Into<String>, nr: u32, arity: u8) -> FuncId {
        let name = name.into();
        let params: Vec<Param> = (0..arity)
            .map(|i| Param {
                name: format!("a{i}"),
                ty: Ty::I64,
            })
            .collect();
        let locals: Vec<Local> = params
            .iter()
            .map(|p| Local {
                name: p.name.clone(),
                ty: p.ty.clone(),
            })
            .collect();
        let mut insts = Vec::new();
        let mut args = Vec::new();
        let mut next = 0u32;
        for i in 0..arity {
            let addr = Reg(next);
            let val = Reg(next + 1);
            next += 2;
            insts.push(Inst::FrameAddr {
                dst: addr,
                slot: SlotId(i as u32),
            });
            insts.push(Inst::Load {
                dst: val,
                addr: Operand::Reg(addr),
                width: Width::W64,
            });
            args.push(Operand::Reg(val));
        }
        let ret = Reg(next);
        insts.push(Inst::Syscall { dst: ret, nr, args });
        let body = Block {
            insts,
            term: Terminator::Ret(Some(Operand::Reg(ret))),
        };
        self.module.functions.push(Function {
            name,
            kind: FuncKind::SyscallStub(nr),
            params,
            ret_ty: Ty::I64,
            locals,
            blocks: vec![body],
            reg_count: next + 1,
        });
        FuncId(self.module.functions.len() as u32 - 1)
    }

    /// Reserves a [`FuncId`] for a function defined later with
    /// [`ModuleBuilder::define`].
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        params: &[(&str, Ty)],
        ret_ty: Ty,
    ) -> FuncId {
        self.module.functions.push(Function {
            name: name.into(),
            kind: FuncKind::Normal,
            params: params
                .iter()
                .map(|(n, t)| Param {
                    name: (*n).to_string(),
                    ty: t.clone(),
                })
                .collect(),
            ret_ty,
            locals: params
                .iter()
                .map(|(n, t)| Local {
                    name: (*n).to_string(),
                    ty: t.clone(),
                })
                .collect(),
            blocks: Vec::new(),
            reg_count: 0,
        });
        FuncId(self.module.functions.len() as u32 - 1)
    }

    /// Starts the body of a previously declared function.
    ///
    /// # Panics
    /// Panics if `id` refers to a syscall stub or an already-defined function.
    pub fn define(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        let f = &self.module.functions[id.index()];
        assert!(
            f.kind == FuncKind::Normal && f.blocks.is_empty(),
            "function {} already defined or is a stub",
            f.name
        );
        FunctionBuilder::new(self, id)
    }

    /// Declares and immediately starts defining a function.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: &[(&str, Ty)],
        ret_ty: Ty,
    ) -> FunctionBuilder<'_> {
        let id = self.declare(name, params, ret_ty);
        self.define(id)
    }

    /// Replaces a struct definition (front-ends patch fields in after
    /// registering the name, enabling self-referential pointer fields).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn patch_struct(&mut self, id: StructId, def: StructDef) {
        self.module.structs[id.index()] = def;
    }

    /// Replaces a global's initializer (used to resolve forward references
    /// to functions in handler-table initializers).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn patch_global_init(&mut self, id: GlobalId, init: GlobalInit) {
        self.module.globals[id.index()].init = init;
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Read-only access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Builds one function's body. Created by [`ModuleBuilder::function`] or
/// [`ModuleBuilder::define`]; call [`FunctionBuilder::finish`] to commit.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    mb: &'a mut ModuleBuilder,
    id: FuncId,
    locals: Vec<Local>,
    blocks: Vec<PartialBlock>,
    current: usize,
    next_reg: u32,
}

#[derive(Debug, Default)]
struct PartialBlock {
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

impl<'a> FunctionBuilder<'a> {
    fn new(mb: &'a mut ModuleBuilder, id: FuncId) -> Self {
        let locals = mb.module.functions[id.index()].locals.clone();
        FunctionBuilder {
            mb,
            id,
            locals,
            blocks: vec![PartialBlock::default()],
            current: 0,
            next_reg: 0,
        }
    }

    /// The id of the function being built.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Adds a named local variable and returns its frame slot.
    pub fn local(&mut self, name: impl Into<String>, ty: Ty) -> SlotId {
        self.locals.push(Local {
            name: name.into(),
            ty,
        });
        SlotId(self.locals.len() as u32 - 1)
    }

    /// The slot holding parameter `i` (parameters occupy the first slots).
    pub fn param_slot(&self, i: usize) -> SlotId {
        assert!(
            i < self.mb.module.functions[self.id.index()].params.len(),
            "param index out of range"
        );
        SlotId(i as u32)
    }

    /// Creates a new (empty, unterminated) block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(PartialBlock::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Makes `b` the insertion point.
    ///
    /// # Panics
    /// Panics if `b` is already terminated.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            self.blocks[b.index()].term.is_none(),
            "block {b} already terminated"
        );
        self.current = b.index();
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        BlockId(self.current as u32)
    }

    /// Appends a raw instruction to the current block.
    pub fn emit(&mut self, inst: Inst) {
        let blk = &mut self.blocks[self.current];
        assert!(blk.term.is_none(), "emitting into a terminated block");
        blk.insts.push(inst);
    }

    /// `dst = src`.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Mov {
            dst,
            src: src.into(),
        });
        dst
    }

    /// `dst = a <op> b`.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Bin {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// `dst = a <cmp> b`.
    pub fn cmp(&mut self, op: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Cmp {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Word load.
    pub fn load(&mut self, addr: impl Into<Operand>) -> Reg {
        self.load_w(addr, Width::W64)
    }

    /// Load with explicit width.
    pub fn load_w(&mut self, addr: impl Into<Operand>, width: Width) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Load {
            dst,
            addr: addr.into(),
            width,
        });
        dst
    }

    /// Word store.
    pub fn store(&mut self, addr: impl Into<Operand>, src: impl Into<Operand>) {
        self.store_w(addr, src, Width::W64);
    }

    /// Store with explicit width.
    pub fn store_w(&mut self, addr: impl Into<Operand>, src: impl Into<Operand>, width: Width) {
        self.emit(Inst::Store {
            addr: addr.into(),
            src: src.into(),
            width,
        });
    }

    /// Address of a frame slot.
    pub fn frame_addr(&mut self, slot: SlotId) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::FrameAddr { dst, slot });
        dst
    }

    /// Address of a global.
    pub fn global_addr(&mut self, global: GlobalId) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::GlobalAddr { dst, global });
        dst
    }

    /// Address of a function (marks it address-taken).
    pub fn func_addr(&mut self, func: FuncId) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::FuncAddr { dst, func });
        dst
    }

    /// Address of `base.field` for struct `struct_id`.
    pub fn field_addr(&mut self, base: impl Into<Operand>, struct_id: StructId, field: u32) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::FieldAddr {
            dst,
            base: base.into(),
            struct_id,
            field,
        });
        dst
    }

    /// Address of `base[index]` with `elem_size`-byte elements.
    pub fn index_addr(
        &mut self,
        base: impl Into<Operand>,
        elem_size: u64,
        index: impl Into<Operand>,
    ) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::IndexAddr {
            dst,
            base: base.into(),
            elem_size,
            index: index.into(),
        });
        dst
    }

    /// Direct call returning a value.
    pub fn call_direct(&mut self, func: FuncId, args: &[Operand]) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Call {
            dst: Some(dst),
            callee: Callee::Direct(func),
            args: args.to_vec(),
        });
        dst
    }

    /// Indirect call through `target`, returning a value.
    pub fn call_indirect(&mut self, target: impl Into<Operand>, args: &[Operand]) -> Reg {
        let dst = self.fresh_reg();
        self.emit(Inst::Call {
            dst: Some(dst),
            callee: Callee::Indirect(target.into()),
            args: args.to_vec(),
        });
        dst
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, b: BlockId) {
        self.terminate(Terminator::Jmp(b));
    }

    /// Conditional branch.
    pub fn br(&mut self, cond: impl Into<Operand>, then_: BlockId, else_: BlockId) {
        self.terminate(Terminator::Br {
            cond: cond.into(),
            then_,
            else_,
        });
    }

    /// Return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.terminate(Terminator::Ret(val));
    }

    fn terminate(&mut self, t: Terminator) {
        let blk = &mut self.blocks[self.current];
        assert!(blk.term.is_none(), "block already terminated");
        blk.term = Some(t);
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.blocks[self.current].term.is_some()
    }

    /// Commits the body into the module. Unterminated blocks receive
    /// `ret void` (mirroring implicit returns at the end of C functions).
    pub fn finish(self) {
        let f = &mut self.mb.module.functions[self.id.index()];
        f.locals = self.locals;
        f.reg_count = self.next_reg;
        f.blocks = self
            .blocks
            .into_iter()
            .map(|pb| Block {
                insts: pb.insts,
                term: pb.term.unwrap_or(Terminator::Ret(None)),
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_branching_function() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("abs", &[("x", Ty::I64)], Ty::I64);
        let px = f.param_slot(0);
        let addr = f.frame_addr(px);
        let x = f.load(addr);
        let neg = f.cmp(CmpOp::Lt, x, 0i64);
        let bneg = f.new_block();
        let bpos = f.new_block();
        f.br(neg, bneg, bpos);
        f.switch_to(bneg);
        let nx = f.bin(BinOp::Sub, 0i64, x);
        f.ret(Some(nx.into()));
        f.switch_to(bpos);
        f.ret(Some(x.into()));
        f.finish();
        let m = mb.finish();
        assert!(m.validate().is_ok());
        let abs = m.func(m.func_by_name("abs").unwrap());
        assert_eq!(abs.blocks.len(), 3);
        assert!(abs.reg_count >= 4);
    }

    #[test]
    fn stub_body_shape() {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.declare_syscall_stub("mprotect", 10, 3);
        let m = mb.finish();
        let f = m.func(id);
        assert_eq!(f.kind, FuncKind::SyscallStub(10));
        assert_eq!(f.params.len(), 3);
        // 3 * (frameaddr + load) + syscall
        assert_eq!(f.blocks[0].insts.len(), 7);
        assert!(matches!(
            f.blocks[0].insts.last(),
            Some(Inst::Syscall { nr: 10, .. })
        ));
    }

    #[test]
    fn declare_then_define_supports_forward_calls() {
        let mut mb = ModuleBuilder::new("t");
        let later = mb.declare("later", &[], Ty::I64);
        let mut f = mb.function("first", &[], Ty::I64);
        let r = f.call_direct(later, &[]);
        f.ret(Some(r.into()));
        f.finish();
        let mut g = mb.define(later);
        g.ret(Some(Operand::Imm(7)));
        g.finish();
        let m = mb.finish();
        assert!(m.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn switching_to_terminated_block_panics() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("f", &[], Ty::Void);
        let entry = f.current_block();
        f.ret(None);
        f.switch_to(entry);
    }

    #[test]
    fn unterminated_blocks_get_ret_void() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.function("f", &[], Ty::Void);
        f.finish();
        let m = mb.finish();
        let f = m.func(m.func_by_name("f").unwrap());
        assert_eq!(f.blocks[0].term, Terminator::Ret(None));
    }
}
