//! Textual rendering of modules, for debugging and golden tests.

use crate::inst::{Callee, Inst, IntrinsicOp, Terminator, Width};
use crate::module::{Function, Module};
use std::fmt::Write as _;

/// Renders a whole module as readable IR text.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for (i, s) in m.structs.iter().enumerate() {
        let fields: Vec<String> = s
            .fields
            .iter()
            .map(|f| format!("{}: {}", f.name, f.ty))
            .collect();
        let _ = writeln!(out, "struct#{i} {} {{ {} }}", s.name, fields.join(", "));
    }
    for (i, g) in m.globals.iter().enumerate() {
        let _ = writeln!(out, "@g{i} {} : {} = {:?}", g.name, g.ty, g.init);
    }
    for (id, f) in m.iter_funcs() {
        let _ = writeln!(out, "\n{}", print_function_header(m, f));
        let _ = writeln!(out, "; id {id}, {} regs", f.reg_count);
        for (bi, b) in f.iter_blocks() {
            let _ = writeln!(out, "{bi}:");
            for inst in &b.insts {
                let _ = writeln!(out, "  {}", print_inst(m, inst));
            }
            let _ = writeln!(out, "  {}", print_term(&b.term));
        }
    }
    out
}

fn print_function_header(_m: &Module, f: &Function) -> String {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, p.ty))
        .collect();
    let kind = match f.kind {
        crate::module::FuncKind::Normal => String::new(),
        crate::module::FuncKind::SyscallStub(nr) => format!(" ; syscall stub nr={nr}"),
    };
    let locals: Vec<String> = f
        .locals
        .iter()
        .map(|l| format!("{}: {}", l.name, l.ty))
        .collect();
    format!(
        "fn {}({}) -> {} {{ locals: {} }}{kind}",
        f.name,
        params.join(", "),
        f.ret_ty,
        locals.join(", "),
    )
}

/// Renders one instruction.
pub fn print_inst(m: &Module, inst: &Inst) -> String {
    let w = |width: &Width| match width {
        Width::W8 => ".b",
        Width::W64 => "",
    };
    match inst {
        Inst::Mov { dst, src } => format!("{dst} = {src}"),
        Inst::Bin { dst, op, a, b } => format!("{dst} = {op} {a}, {b}"),
        Inst::Cmp { dst, op, a, b } => format!("{dst} = cmp.{op} {a}, {b}"),
        Inst::Load { dst, addr, width } => format!("{dst} = load{} [{addr}]", w(width)),
        Inst::Store { addr, src, width } => format!("store{} [{addr}], {src}", w(width)),
        Inst::FrameAddr { dst, slot } => format!("{dst} = frame_addr {slot}"),
        Inst::GlobalAddr { dst, global } => {
            format!(
                "{dst} = global_addr {global} ; {}",
                m.globals[global.index()].name
            )
        }
        Inst::FuncAddr { dst, func } => {
            format!("{dst} = func_addr {func} ; &{}", m.func(*func).name)
        }
        Inst::FieldAddr {
            dst,
            base,
            struct_id,
            field,
        } => {
            let s = &m.structs[struct_id.index()];
            format!(
                "{dst} = field_addr {base}, {}.{}",
                s.name, s.fields[*field as usize].name
            )
        }
        Inst::IndexAddr {
            dst,
            base,
            elem_size,
            index,
        } => format!("{dst} = index_addr {base}[{index} * {elem_size}]"),
        Inst::Call { dst, callee, args } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let target = match callee {
                Callee::Direct(f) => m.func(*f).name.clone(),
                Callee::Indirect(op) => format!("*{op}"),
            };
            match dst {
                Some(d) => format!("{d} = call {target}({})", args.join(", ")),
                None => format!("call {target}({})", args.join(", ")),
            }
        }
        Inst::Syscall { dst, nr, args } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("{dst} = syscall {nr}({})", args.join(", "))
        }
        Inst::Intrinsic(op) => match op {
            IntrinsicOp::CtxWriteMem { addr, size } => format!("ctx_write_mem({addr}, {size})"),
            IntrinsicOp::CtxBindMem { pos, addr } => format!("ctx_bind_mem_{pos}({addr})"),
            IntrinsicOp::CtxBindConst { pos, value } => format!("ctx_bind_const_{pos}({value})"),
        },
    }
}

fn print_term(t: &Terminator) -> String {
    match t {
        Terminator::Jmp(b) => format!("jmp {b}"),
        Terminator::Br { cond, then_, else_ } => format!("br {cond}, {then_}, {else_}"),
        Terminator::Ret(Some(v)) => format!("ret {v}"),
        Terminator::Ret(None) => "ret".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ModuleBuilder;
    use crate::inst::Operand;
    use crate::types::Ty;

    #[test]
    fn printer_mentions_names_and_stubs() {
        let mut mb = ModuleBuilder::new("demo");
        let execve = mb.declare_syscall_stub("execve", 59, 3);
        let g = mb.global_str("path", "/bin/sh");
        let mut f = mb.function("main", &[], Ty::I64);
        let p = f.global_addr(g);
        let r = f.call_direct(execve, &[Operand::Reg(p), Operand::Imm(0), Operand::Imm(0)]);
        f.ret(Some(r.into()));
        f.finish();
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("syscall stub nr=59"));
        assert!(text.contains("call execve"));
        assert!(text.contains("global_addr"));
        assert!(text.contains("module demo"));
    }

    #[test]
    fn printer_renders_intrinsics() {
        use crate::inst::IntrinsicOp;
        let m = Module::new("x");
        let s = print_inst(
            &m,
            &Inst::Intrinsic(IntrinsicOp::CtxBindConst { pos: 3, value: -1 }),
        );
        assert_eq!(s, "ctx_bind_const_3(-1)");
    }
}
