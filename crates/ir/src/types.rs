//! Type system for the IR.
//!
//! The IR is word-oriented: every scalar value is a 64-bit word at runtime.
//! Types exist to drive **layout** (sizes and field offsets, needed for the
//! field-sensitive analysis of paper §6.3.3) and to give the LLVM-CFI
//! baseline its type-signature equivalence classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a [`StructDef`] within a [`crate::Module`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StructId(pub u32);

impl StructId {
    /// Index into `Module::structs`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "struct#{}", self.0)
    }
}

/// An IR type.
///
/// `I8` exists so byte buffers (strings, network payloads) have a natural
/// representation; everything else is an 8-byte word. Function types carry
/// only their arity because MiniC (like C with our word model) has a single
/// scalar width — this is exactly the granularity at which coarse LLVM CFI
/// builds its equivalence classes for the baseline defense.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// A single byte.
    I8,
    /// A 64-bit integer word; the default scalar type.
    I64,
    /// A pointer to `Ty`; 8 bytes at runtime.
    Ptr(Box<Ty>),
    /// A named aggregate defined in the module's struct table.
    Struct(StructId),
    /// A fixed-size array.
    Array(Box<Ty>, u64),
    /// A function with `arity` word arguments. Used for function pointers.
    Func { arity: u8 },
    /// No value (function return type only).
    Void,
}

impl Ty {
    /// Convenience constructor for a pointer to `t`.
    pub fn ptr(t: Ty) -> Ty {
        Ty::Ptr(Box::new(t))
    }

    /// Pointer to a byte, i.e. `char *`.
    pub fn byte_ptr() -> Ty {
        Ty::ptr(Ty::I8)
    }

    /// Size of the type in bytes given the module's struct table.
    ///
    /// # Panics
    /// Panics if a [`StructId`] is out of bounds for `structs`.
    pub fn size(&self, structs: &[StructDef]) -> u64 {
        match self {
            Ty::I8 => 1,
            Ty::I64 | Ty::Ptr(_) | Ty::Func { .. } => 8,
            Ty::Struct(id) => structs[id.index()].size(structs),
            Ty::Array(elem, n) => elem.size(structs) * n,
            Ty::Void => 0,
        }
    }

    /// Whether values of this type fit in a single machine word.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::I8 | Ty::I64 | Ty::Ptr(_) | Ty::Func { .. })
    }

    /// The pointee type if this is a pointer.
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I8 => write!(f, "i8"),
            Ty::I64 => write!(f, "i64"),
            Ty::Ptr(t) => write!(f, "{t}*"),
            Ty::Struct(id) => write!(f, "{id}"),
            Ty::Array(t, n) => write!(f, "[{t}; {n}]"),
            Ty::Func { arity } => write!(f, "fn/{arity}"),
            Ty::Void => write!(f, "void"),
        }
    }
}

/// A named field of a struct.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Source-level field name (e.g. `path` in `ngx_exec_ctx_t`).
    pub name: String,
    /// Field type.
    pub ty: Ty,
}

/// An aggregate type definition.
///
/// Fields are laid out in declaration order with no padding beyond natural
/// byte packing — every scalar is 8 bytes so alignment issues do not arise
/// for word fields; byte arrays are packed as-is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructDef {
    /// Source-level struct name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl StructDef {
    /// Creates a struct definition from `(name, ty)` pairs.
    pub fn new(name: impl Into<String>, fields: Vec<(String, Ty)>) -> Self {
        StructDef {
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(name, ty)| Field { name, ty })
                .collect(),
        }
    }

    /// Total size in bytes.
    pub fn size(&self, structs: &[StructDef]) -> u64 {
        self.fields.iter().map(|f| f.ty.size(structs)).sum()
    }

    /// Byte offset of field `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn field_offset(&self, idx: usize, structs: &[StructDef]) -> u64 {
        assert!(idx < self.fields.len(), "field index out of bounds");
        self.fields[..idx].iter().map(|f| f.ty.size(structs)).sum()
    }

    /// Index of the field named `name`, if any.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structs() -> Vec<StructDef> {
        vec![
            StructDef::new(
                "exec_ctx",
                vec![
                    ("path".into(), Ty::byte_ptr()),
                    ("argv".into(), Ty::ptr(Ty::byte_ptr())),
                    ("envp".into(), Ty::ptr(Ty::byte_ptr())),
                ],
            ),
            StructDef::new(
                "mixed",
                vec![
                    ("tag".into(), Ty::I8),
                    ("buf".into(), Ty::Array(Box::new(Ty::I8), 15)),
                    ("len".into(), Ty::I64),
                ],
            ),
        ]
    }

    #[test]
    fn scalar_sizes() {
        let s = structs();
        assert_eq!(Ty::I8.size(&s), 1);
        assert_eq!(Ty::I64.size(&s), 8);
        assert_eq!(Ty::byte_ptr().size(&s), 8);
        assert_eq!(Ty::Func { arity: 3 }.size(&s), 8);
        assert_eq!(Ty::Void.size(&s), 0);
    }

    #[test]
    fn struct_layout() {
        let s = structs();
        assert_eq!(Ty::Struct(StructId(0)).size(&s), 24);
        assert_eq!(s[0].field_offset(0, &s), 0);
        assert_eq!(s[0].field_offset(2, &s), 16);
        // mixed: 1 + 15 + 8
        assert_eq!(Ty::Struct(StructId(1)).size(&s), 24);
        assert_eq!(s[1].field_offset(2, &s), 16);
    }

    #[test]
    fn array_size_and_field_lookup() {
        let s = structs();
        assert_eq!(Ty::Array(Box::new(Ty::I64), 10).size(&s), 80);
        assert_eq!(s[0].field_index("argv"), Some(1));
        assert_eq!(s[0].field_index("nope"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::byte_ptr().to_string(), "i8*");
        assert_eq!(Ty::Array(Box::new(Ty::I64), 4).to_string(), "[i64; 4]");
        assert_eq!(Ty::Struct(StructId(7)).to_string(), "struct#7");
    }

    #[test]
    fn pointee_access() {
        assert_eq!(Ty::byte_ptr().pointee(), Some(&Ty::I8));
        assert_eq!(Ty::I64.pointee(), None);
    }
}
