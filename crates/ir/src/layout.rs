//! Code layout: assigning virtual addresses to instructions.
//!
//! BASTION's metadata keys everything on *addresses* — callsite file offsets,
//! callee/caller address pairs, the trapped `rip` — so the reproduction needs
//! a deterministic mapping from IR instructions to a flat virtual address
//! space. Every instruction (terminators included) occupies [`INST_SIZE`]
//! bytes; functions are laid out consecutively, 16-byte aligned, starting at
//! a base that an ASLR-style slide can shift at load time.
//!
//! Return addresses point at the instruction *after* a call, so the monitor
//! recovers the callsite as `retaddr - CALL_SIZE`, exactly like decoding the
//! `call` instruction preceding the return target on x86.

use crate::module::{BlockId, FuncId, Module};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of every encoded instruction in bytes.
pub const INST_SIZE: u64 = 4;

/// Size of a call instruction; `callsite = return_address - CALL_SIZE`.
pub const CALL_SIZE: u64 = INST_SIZE;

/// Default link-time base of the code segment.
pub const DEFAULT_CODE_BASE: u64 = 0x0040_0000;

/// A virtual code address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CodeAddr(pub u64);

impl CodeAddr {
    /// The raw address value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The address `delta` bytes further on.
    pub fn offset(self, delta: u64) -> CodeAddr {
        CodeAddr(self.0 + delta)
    }
}

impl fmt::Display for CodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// The position of one instruction inside a module.
///
/// `inst == block.insts.len()` designates the block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstLoc {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Instruction index within the block; the terminator sits one past the
    /// last ordinary instruction.
    pub inst: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct FuncLayout {
    base: u64,
    /// Prefix starts of each block (in instruction units, incl. terminator).
    block_starts: Vec<u64>,
    /// Total instruction units in the function.
    len: u64,
}

/// The address map for a module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodeLayout {
    base: u64,
    funcs: Vec<FuncLayout>,
    end: u64,
}

impl CodeLayout {
    /// Lays out `module` at the default code base.
    pub fn new(module: &Module) -> Self {
        Self::with_base(module, DEFAULT_CODE_BASE)
    }

    /// Lays out `module` with an explicit base (e.g. an ASLR slide applied
    /// by the loader).
    pub fn with_base(module: &Module, base: u64) -> Self {
        let mut cursor = base;
        let mut funcs = Vec::with_capacity(module.functions.len());
        for f in &module.functions {
            cursor = cursor.div_ceil(16) * 16;
            let mut block_starts = Vec::with_capacity(f.blocks.len());
            let mut units = 0u64;
            for b in &f.blocks {
                block_starts.push(units);
                units += b.insts.len() as u64 + 1;
            }
            funcs.push(FuncLayout {
                base: cursor,
                block_starts,
                len: units,
            });
            cursor += units * INST_SIZE;
        }
        CodeLayout {
            base,
            funcs,
            end: cursor,
        }
    }

    /// The code segment base address.
    pub fn code_base(&self) -> CodeAddr {
        CodeAddr(self.base)
    }

    /// One past the last code address.
    pub fn code_end(&self) -> CodeAddr {
        CodeAddr(self.end)
    }

    /// Entry address of a function.
    ///
    /// # Panics
    /// Panics if `f` is out of bounds.
    pub fn func_entry(&self, f: FuncId) -> CodeAddr {
        CodeAddr(self.funcs[f.index()].base)
    }

    /// One past the last instruction address of a function.
    ///
    /// # Panics
    /// Panics if `f` is out of bounds.
    pub fn func_end(&self, f: FuncId) -> CodeAddr {
        let fl = &self.funcs[f.index()];
        CodeAddr(fl.base + fl.len * INST_SIZE)
    }

    /// Address of an instruction location.
    ///
    /// # Panics
    /// Panics if the location does not exist in the laid-out module.
    pub fn addr_of(&self, loc: InstLoc) -> CodeAddr {
        let fl = &self.funcs[loc.func.index()];
        let unit = fl.block_starts[loc.block.index()] + loc.inst as u64;
        assert!(unit < fl.len, "instruction location out of range");
        CodeAddr(fl.base + unit * INST_SIZE)
    }

    /// Resolves a code address back to its instruction location, if it is
    /// exactly the start of an instruction in some function.
    pub fn loc_of(&self, addr: CodeAddr) -> Option<InstLoc> {
        let f = self.func_of(addr)?;
        let fl = &self.funcs[f.index()];
        let delta = addr.0 - fl.base;
        if !delta.is_multiple_of(INST_SIZE) {
            return None;
        }
        let unit = delta / INST_SIZE;
        if unit >= fl.len {
            return None;
        }
        // Find the containing block: last block_start <= unit.
        let block = match fl.block_starts.binary_search(&unit) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some(InstLoc {
            func: f,
            block: BlockId(block as u32),
            inst: (unit - fl.block_starts[block]) as usize,
        })
    }

    /// The function containing `addr`, if any.
    pub fn func_of(&self, addr: CodeAddr) -> Option<FuncId> {
        if addr.0 < self.base || addr.0 >= self.end {
            return None;
        }
        // Binary search over function bases.
        let idx = self.funcs.partition_point(|fl| fl.base <= addr.0);
        if idx == 0 {
            return None;
        }
        let f = idx - 1;
        let fl = &self.funcs[f];
        if addr.0 < fl.base + fl.len * INST_SIZE {
            Some(FuncId(f as u32))
        } else {
            None
        }
    }

    /// Whether `addr` is a valid code address (start of some instruction).
    pub fn is_inst_start(&self, addr: CodeAddr) -> bool {
        self.loc_of(addr).is_some()
    }

    /// Total number of [`INST_SIZE`]-byte units spanned by the code segment,
    /// alignment padding between functions included. A predecoded flat
    /// instruction stream indexed by `(addr - base) / INST_SIZE` has exactly
    /// this many entries.
    pub fn total_units(&self) -> u64 {
        (self.end - self.base) / INST_SIZE
    }

    /// Flat unit index of an instruction location:
    /// `(addr_of(loc) - code_base) / INST_SIZE`.
    ///
    /// # Panics
    /// Panics if the location does not exist in the laid-out module.
    pub fn unit_of(&self, loc: InstLoc) -> u64 {
        (self.addr_of(loc).raw() - self.base) / INST_SIZE
    }

    /// The code address of flat unit `unit` (inverse of [`Self::unit_of`]
    /// for in-range units).
    pub fn addr_of_unit(&self, unit: u64) -> CodeAddr {
        CodeAddr(self.base + unit * INST_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ModuleBuilder;
    use crate::inst::Operand;
    use crate::types::Ty;

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let stub = mb.declare_syscall_stub("getpid", 39, 0);
        let mut f = mb.function("main", &[], Ty::I64);
        let b2 = f.new_block();
        f.jmp(b2);
        f.switch_to(b2);
        let r = f.call_direct(stub, &[]);
        f.ret(Some(Operand::Reg(r)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn roundtrip_every_instruction() {
        let m = sample();
        let layout = CodeLayout::new(&m);
        for (fid, f) in m.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for i in 0..=b.insts.len() {
                    let loc = InstLoc {
                        func: fid,
                        block: bid,
                        inst: i,
                    };
                    let addr = layout.addr_of(loc);
                    assert_eq!(layout.loc_of(addr), Some(loc));
                    assert_eq!(layout.func_of(addr), Some(fid));
                }
            }
        }
    }

    #[test]
    fn functions_are_aligned_and_disjoint() {
        let m = sample();
        let layout = CodeLayout::new(&m);
        let a = layout.func_entry(FuncId(0));
        let b = layout.func_entry(FuncId(1));
        assert_eq!(a.raw() % 16, 0);
        assert_eq!(b.raw() % 16, 0);
        assert!(b.raw() > a.raw());
    }

    #[test]
    fn out_of_range_addresses_resolve_to_none() {
        let m = sample();
        let layout = CodeLayout::new(&m);
        assert_eq!(layout.loc_of(CodeAddr(0)), None);
        assert_eq!(layout.func_of(CodeAddr(layout.code_end().raw())), None);
        // Misaligned address inside code.
        let entry = layout.func_entry(FuncId(0));
        assert_eq!(layout.loc_of(CodeAddr(entry.raw() + 2)), None);
    }

    #[test]
    fn flat_units_cover_code_and_roundtrip() {
        let m = sample();
        let layout = CodeLayout::new(&m);
        assert_eq!(
            layout.total_units() * INST_SIZE,
            layout.code_end().raw() - layout.code_base().raw()
        );
        for (fid, f) in m.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for i in 0..=b.insts.len() {
                    let loc = InstLoc {
                        func: fid,
                        block: bid,
                        inst: i,
                    };
                    let unit = layout.unit_of(loc);
                    assert!(unit < layout.total_units());
                    assert_eq!(layout.addr_of_unit(unit), layout.addr_of(loc));
                }
            }
        }
    }

    #[test]
    fn aslr_slide_shifts_everything() {
        let m = sample();
        let a = CodeLayout::with_base(&m, 0x40_0000);
        let b = CodeLayout::with_base(&m, 0x50_0000);
        let delta = 0x10_0000;
        assert_eq!(
            b.func_entry(FuncId(1)).raw() - a.func_entry(FuncId(1)).raw(),
            delta
        );
    }
}
