//! Analysis behaviour on tricky call-graph shapes: recursion, diamonds,
//! syscalls directly in main, and unreachable code.

use bastion_analysis::{CallGraph, CallTypeReport, ControlFlowReport, SensitiveReport};
use bastion_ir::build::ModuleBuilder;
use bastion_ir::{sysno, Module, Operand, Ty};

fn reports(
    m: &Module,
) -> (
    CallGraph,
    CallTypeReport,
    ControlFlowReport,
    SensitiveReport,
) {
    let cg = CallGraph::build(m);
    let ct = CallTypeReport::build(m, &cg);
    let cf = ControlFlowReport::build(m, &cg, &sysno::sensitive_set());
    let sr = SensitiveReport::build(m, &cg, &sysno::sensitive_set());
    (cg, ct, cf, sr)
}

#[test]
fn recursive_cycles_terminate_and_record_edges() {
    // a -> b -> a (cycle), b -> execve.
    let mut mb = ModuleBuilder::new("rec");
    let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
    let a = mb.declare("a", &[("n", Ty::I64)], Ty::Void);
    let b = mb.declare("b", &[("n", Ty::I64)], Ty::Void);
    let mut f = mb.define(a);
    let pa = f.frame_addr(f.param_slot(0));
    let v = f.load(pa);
    let _ = f.call_direct(b, &[v.into()]);
    f.ret(None);
    f.finish();
    let mut f = mb.define(b);
    let pa = f.frame_addr(f.param_slot(0));
    let v = f.load(pa);
    let _ = f.call_direct(a, &[v.into()]);
    let z = Operand::Imm(0);
    let _ = f.call_direct(execve, &[z, z, z]);
    f.ret(None);
    f.finish();
    let mut f = mb.function("main", &[], Ty::I64);
    let _ = f.call_direct(a, &[Operand::Imm(3)]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    let m = mb.finish();

    let (_, ct, cf, _) = reports(&m);
    assert!(ct.class_of(sysno::EXECVE).allows_direct());
    // Both cycle members are in the reaching subgraph with both edges.
    assert!(cf.reaching.contains(&a));
    assert!(cf.reaching.contains(&b));
    assert_eq!(cf.valid_callers[&a].len(), 2); // from main and from b
    assert_eq!(cf.valid_callers[&b].len(), 1); // from a
}

#[test]
fn diamond_reaching_paths_record_all_callers() {
    // main -> {left, right} -> helper -> mprotect.
    let mut mb = ModuleBuilder::new("diamond");
    let mprotect = mb.declare_syscall_stub("mprotect", sysno::MPROTECT, 3);
    let helper = mb.declare("helper", &[], Ty::Void);
    let left = mb.declare("left", &[], Ty::Void);
    let right = mb.declare("right", &[], Ty::Void);
    let mut f = mb.define(helper);
    let z = Operand::Imm(0);
    let _ = f.call_direct(mprotect, &[z, z, Operand::Imm(1)]);
    f.ret(None);
    f.finish();
    for id in [left, right] {
        let mut f = mb.define(id);
        let _ = f.call_direct(helper, &[]);
        f.ret(None);
        f.finish();
    }
    let mut f = mb.function("main", &[], Ty::I64);
    let _ = f.call_direct(left, &[]);
    let _ = f.call_direct(right, &[]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    let m = mb.finish();

    let (_, _, cf, sr) = reports(&m);
    // helper has two valid callers; each branch one.
    assert_eq!(cf.valid_callers[&helper].len(), 2);
    assert_eq!(cf.valid_callers[&left].len(), 1);
    assert_eq!(cf.valid_callers[&right].len(), 1);
    // The single mprotect site has two consts and a const prot.
    assert_eq!(sr.syscall_sites.len(), 1);
    assert!(sr.syscall_sites[0].args.iter().all(|a| a.is_const()));
}

#[test]
fn syscall_directly_in_main_walks_to_bottom() {
    let mut mb = ModuleBuilder::new("direct");
    let setuid = mb.declare_syscall_stub("setuid", sysno::SETUID, 1);
    let mut f = mb.function("main", &[], Ty::I64);
    let _ = f.call_direct(setuid, &[Operand::Imm(99)]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    let m = mb.finish();
    let (_, _, cf, _) = reports(&m);
    let main = m.func_by_name("main").unwrap();
    assert!(cf.may_terminate_at(main));
    assert_eq!(cf.valid_callers[&setuid].len(), 1);
}

#[test]
fn unreachable_sensitive_code_still_classified() {
    // A function containing execve exists but nothing calls it: the
    // *callsite* still makes execve directly-callable (whole-image
    // analysis, like the paper's handling of libc), and the function is
    // part of the reaching subgraph without valid callers.
    let mut mb = ModuleBuilder::new("dead");
    let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
    let mut f = mb.function("dead_code", &[], Ty::Void);
    let z = Operand::Imm(0);
    let _ = f.call_direct(execve, &[z, z, z]);
    f.ret(None);
    f.finish();
    let mut f = mb.function("main", &[], Ty::I64);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    let m = mb.finish();
    let (_, ct, cf, _) = reports(&m);
    assert!(ct.class_of(sysno::EXECVE).allows_direct());
    let dead = m.func_by_name("dead_code").unwrap();
    assert!(cf.reaching.contains(&dead));
    // dead_code has no callers: a runtime frame claiming to be inside it
    // can never validate.
    assert!(!cf.valid_callers.contains_key(&dead));
}

#[test]
fn indirect_only_chain_is_marked_terminable() {
    // main -(indirect)-> handler -> socket.
    let mut mb = ModuleBuilder::new("ind");
    let socket = mb.declare_syscall_stub("socket", sysno::SOCKET, 3);
    let handler = mb.declare("handler", &[], Ty::Void);
    let mut f = mb.define(handler);
    let z = Operand::Imm(0);
    let _ = f.call_direct(socket, &[z, z, z]);
    f.ret(None);
    f.finish();
    let mut f = mb.function("main", &[], Ty::I64);
    let p = f.func_addr(handler);
    let _ = f.call_indirect(p, &[]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    let m = mb.finish();
    let (_, _, cf, _) = reports(&m);
    assert!(cf.indirect_entries.contains(&handler));
    assert!(cf.may_terminate_at(handler));
    // handler has no *direct* callers recorded.
    assert!(!cf.valid_callers.contains_key(&handler));
}

#[test]
fn field_writes_through_distinct_objects_share_a_class() {
    // Two globals of the same struct type; a syscall reads the field from
    // one of them; writes to *either* are instrumented (type+field class).
    let mut mb = ModuleBuilder::new("fields");
    let st = mb.struct_def(bastion_ir::StructDef::new(
        "cfg",
        vec![("uid".into(), Ty::I64)],
    ));
    let setuid = mb.declare_syscall_stub("setuid", sysno::SETUID, 1);
    let g1 = mb.global("cfg_a", Ty::Struct(st), bastion_ir::GlobalInit::Zero);
    let g2 = mb.global("cfg_b", Ty::Struct(st), bastion_ir::GlobalInit::Zero);
    let mut f = mb.function("main", &[], Ty::I64);
    let a1 = f.global_addr(g1);
    let f1 = f.field_addr(a1, st, 0);
    f.store(f1, 33i64);
    let a2 = f.global_addr(g2);
    let f2 = f.field_addr(a2, st, 0);
    f.store(f2, 44i64);
    let a1b = f.global_addr(g1);
    let f1b = f.field_addr(a1b, st, 0);
    let v = f.load(f1b);
    let _ = f.call_direct(setuid, &[v.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    let m = mb.finish();
    let (_, _, _, sr) = reports(&m);
    // Both stores are instrumented, not just the one feeding the syscall.
    assert_eq!(sr.store_sites.len(), 2);
}
