//! Argument Integrity context analysis (paper §6.3).
//!
//! Discovers the program's **sensitive variables** — every variable passed
//! as an argument to a sensitive system call plus everything in those
//! variables' use-def chains — and decides where the instrumentation pass
//! must insert the Table 2 runtime-library calls:
//!
//! * `ctx_write_mem` after every store to a sensitive memory location, and
//! * `ctx_bind_mem_X` / `ctx_bind_const_X` before sensitive syscall
//!   callsites *and* before non-syscall callsites that pass sensitive
//!   variables onward (the `bar(x1, x2, flags)` case of Figure 2).
//!
//! The analysis is field-sensitive (struct fields form their own location
//! classes) and inter-procedural (parameter slots propagate to caller
//! argument expressions; pointer parameters propagate to caller pointee
//! objects), mirroring §6.3.3's three-step fixpoint.

use crate::callgraph::CallGraph;
use bastion_ir::{
    BinOp, Callee, FuncId, GlobalId, Inst, InstLoc, Module, Operand, Reg, SlotId, StructId, Width,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// An abstract memory location class.
///
/// `Slot`/`Global` are concrete objects; `Field` is the type-and-field class
/// of §3.3 ("the `path` field of a `ngx_exec_ctx_t` structure"); `Pointee`
/// is memory reached through a pointer that itself lives in another
/// location (used both for pointer parameters and for extended syscall
/// arguments whose buffer contents must be shadowed).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Loc {
    /// A stack frame slot of a specific function.
    Slot {
        /// Owning function.
        func: FuncId,
        /// Slot within the frame.
        slot: SlotId,
    },
    /// A module global.
    Global(GlobalId),
    /// Any object's field of the given struct type (field-sensitive class).
    Field {
        /// The struct type.
        struct_id: StructId,
        /// The field index.
        field: u32,
    },
    /// Memory reached by dereferencing the pointer stored in the inner
    /// location.
    Pointee(Box<Loc>),
}

impl Loc {
    /// Convenience constructor for [`Loc::Pointee`].
    pub fn pointee(inner: Loc) -> Loc {
        Loc::Pointee(Box::new(inner))
    }
}

/// How one callsite argument is verified (becomes metadata + bindings).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgSpec {
    /// A compile-time constant; the monitor compares against it directly and
    /// the compiler emits `ctx_bind_const_X`.
    Const(i64),
    /// A memory-backed sensitive variable; the compiler emits
    /// `ctx_bind_mem_X` with the variable's runtime address.
    Mem(Loc),
    /// The address of a global object: statically known after load, checked
    /// like a constant once the loader's slide is applied.
    GlobalAddr(GlobalId),
    /// The address of a stack object: frame-relative, so only its
    /// plausibility is checked at runtime.
    StackAddr,
    /// Not statically resolvable; no argument-integrity check is possible
    /// for this position.
    Opaque,
}

impl ArgSpec {
    /// Whether this spec produces a `ctx_bind_mem` instrumentation.
    pub fn is_mem(&self) -> bool {
        matches!(self, ArgSpec::Mem(_))
    }

    /// Whether this spec produces a `ctx_bind_const` instrumentation.
    pub fn is_const(&self) -> bool {
        matches!(self, ArgSpec::Const(_) | ArgSpec::GlobalAddr(_))
    }
}

/// A store instruction that must be followed by `ctx_write_mem`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSite {
    /// Location of the store instruction.
    pub loc: InstLoc,
    /// The sensitive location class it writes.
    pub target: Loc,
    /// Store width (shadow entry size).
    pub width: Width,
}

/// A sensitive system call callsite and the verification spec of each
/// argument position (1-based positions; index 0 of `args` is position 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallSite {
    /// The call instruction invoking the stub.
    pub callsite: InstLoc,
    /// Syscall number.
    pub nr: u32,
    /// The stub function called.
    pub stub: FuncId,
    /// Per-position argument specs.
    pub args: Vec<ArgSpec>,
}

/// A non-syscall callsite that passes sensitive variables to its callee and
/// therefore also receives bindings (Figure 2's `bar(x1, x2, flags)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropSite {
    /// The call instruction.
    pub callsite: InstLoc,
    /// The callee receiving sensitive arguments.
    pub callee: FuncId,
    /// `(position, spec)` pairs for the sensitive positions only.
    pub args: Vec<(u8, ArgSpec)>,
}

/// The complete result of sensitive-variable analysis.
#[derive(Debug, Clone, Default)]
pub struct SensitiveReport {
    /// All sensitive location classes discovered.
    pub sensitive_locs: BTreeSet<Loc>,
    /// Stores requiring `ctx_write_mem`.
    pub store_sites: Vec<StoreSite>,
    /// Sensitive syscall callsites with argument specs.
    pub syscall_sites: Vec<SyscallSite>,
    /// Propagation callsites with their sensitive positions.
    pub prop_sites: Vec<PropSite>,
    /// Sensitive *parameter* slots: the implicit argument spill at function
    /// entry must refresh the shadow copy (Figure 2's `ctx_write_mem(&b2)`
    /// at the top of `bar`).
    pub param_spills: BTreeSet<(FuncId, SlotId)>,
}

impl SensitiveReport {
    /// Runs the analysis for the syscalls in `sensitive_nrs`.
    pub fn build(module: &Module, cg: &CallGraph, sensitive_nrs: &BTreeSet<u32>) -> Self {
        Analyzer::new(module, cg, sensitive_nrs).run()
    }

    /// Number of `ctx_write_mem` instrumentation points (Table 5):
    /// explicit sensitive stores plus implicit parameter spills.
    pub fn write_mem_count(&self) -> usize {
        self.store_sites.len() + self.param_spills.len()
    }

    /// Number of `ctx_bind_mem_X` instrumentation points (Table 5).
    pub fn bind_mem_count(&self) -> usize {
        self.syscall_sites
            .iter()
            .flat_map(|s| s.args.iter())
            .filter(|a| a.is_mem())
            .count()
            + self
                .prop_sites
                .iter()
                .flat_map(|s| s.args.iter())
                .filter(|(_, a)| a.is_mem())
                .count()
    }

    /// Number of `ctx_bind_const_X` instrumentation points (Table 5).
    pub fn bind_const_count(&self) -> usize {
        self.syscall_sites
            .iter()
            .flat_map(|s| s.args.iter())
            .filter(|a| a.is_const())
            .count()
            + self
                .prop_sites
                .iter()
                .flat_map(|s| s.args.iter())
                .filter(|(_, a)| a.is_const())
                .count()
    }
}

/// What a value chain resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ValSpec {
    Const(i64),
    Mem(Loc),
    AddrOf(Loc),
    GlobalAddr(GlobalId),
    Opaque,
}

struct FuncIndex<'m> {
    /// Single-definition map (builder-produced IR defines each reg once).
    defs: HashMap<Reg, &'m Inst>,
    /// All stores: (loc, addr operand, src operand, width, resolved target).
    stores: Vec<(InstLoc, Operand, Operand, Width, Option<Loc>)>,
}

struct Analyzer<'m> {
    module: &'m Module,
    cg: &'m CallGraph,
    sensitive_nrs: &'m BTreeSet<u32>,
    idx: Vec<FuncIndex<'m>>,
    /// Store index: location class → (func, store index) pairs.
    store_index: BTreeMap<Loc, Vec<(FuncId, usize)>>,
    /// &L passed as a call argument: L → (callee, parameter slot) pairs.
    addr_taken_args: BTreeMap<Loc, Vec<(FuncId, SlotId)>>,
    /// Pointer parameters whose pointee stores are instrumented (the
    /// instrumentation-only closure of the forward aliasing rule —
    /// deliberately *not* re-propagated to every caller, which would
    /// taint unrelated hot code).
    instr_params: BTreeSet<(FuncId, SlotId)>,
    sensitive: BTreeSet<Loc>,
    queue: VecDeque<Loc>,
    report: SensitiveReport,
    /// (callsite, position) pairs already recorded as propagation bindings.
    prop_seen: BTreeSet<(InstLoc, u8)>,
    /// Stores already emitted as instrumentation points.
    stores_seen: BTreeSet<InstLoc>,
}

impl<'m> Analyzer<'m> {
    fn new(module: &'m Module, cg: &'m CallGraph, sensitive_nrs: &'m BTreeSet<u32>) -> Self {
        let mut idx = Vec::with_capacity(module.functions.len());
        for (_fid, f) in module.iter_funcs() {
            let mut defs = HashMap::new();
            for b in &f.blocks {
                for inst in &b.insts {
                    if let Some(d) = inst.def() {
                        defs.insert(d, inst);
                    }
                }
            }
            idx.push(FuncIndex {
                defs,
                stores: Vec::new(),
            });
        }
        let mut a = Analyzer {
            module,
            cg,
            sensitive_nrs,
            idx,
            store_index: BTreeMap::new(),
            addr_taken_args: BTreeMap::new(),
            instr_params: BTreeSet::new(),
            sensitive: BTreeSet::new(),
            queue: VecDeque::new(),
            report: SensitiveReport::default(),
            prop_seen: BTreeSet::new(),
            stores_seen: BTreeSet::new(),
        };
        a.index_stores();
        a.index_addr_args();
        a
    }

    /// Indexes `&L` (or `&global`) passed directly as a call argument, so
    /// forward aliasing into callee pointer parameters is discoverable.
    fn index_addr_args(&mut self) {
        for (fid, f) in self.module.iter_funcs() {
            for b in &f.blocks {
                for inst in &b.insts {
                    let Inst::Call {
                        callee: Callee::Direct(target),
                        args,
                        ..
                    } = inst
                    else {
                        continue;
                    };
                    for (i, arg) in args.iter().enumerate() {
                        if i >= self.module.func(*target).params.len() {
                            break;
                        }
                        let loc = match self.addr_value(fid, *arg) {
                            Some(l) => l,
                            None => continue,
                        };
                        self.addr_taken_args
                            .entry(loc)
                            .or_default()
                            .push((*target, SlotId(i as u32)));
                    }
                }
            }
        }
    }

    /// Resolves an operand that *is* an address (&slot / &global / field
    /// address) to the location it names, without enqueueing anything.
    fn addr_value(&self, f: FuncId, op: Operand) -> Option<Loc> {
        let r = op.as_reg()?;
        match self.idx[f.index()].defs.get(&r)? {
            Inst::FrameAddr { slot, .. } => Some(Loc::Slot {
                func: f,
                slot: *slot,
            }),
            Inst::GlobalAddr { global, .. } => Some(Loc::Global(*global)),
            Inst::FieldAddr {
                struct_id, field, ..
            } => Some(Loc::Field {
                struct_id: *struct_id,
                field: *field,
            }),
            _ => None,
        }
    }

    fn index_stores(&mut self) {
        for (fid, f) in self.module.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for (i, inst) in b.insts.iter().enumerate() {
                    if let Inst::Store { addr, src, width } = inst {
                        let loc = InstLoc {
                            func: fid,
                            block: bid,
                            inst: i,
                        };
                        let resolved = self.resolve_addr(fid, *addr, 0);
                        let sidx = self.idx[fid.index()].stores.len();
                        self.idx[fid.index()].stores.push((
                            loc,
                            *addr,
                            *src,
                            *width,
                            resolved.clone(),
                        ));
                        if let Some(l) = resolved {
                            self.store_index.entry(l).or_default().push((fid, sidx));
                        }
                    }
                }
            }
        }
    }

    /// Resolves the location class an address operand points at.
    fn resolve_addr(&self, f: FuncId, op: Operand, depth: u32) -> Option<Loc> {
        if depth > 16 {
            return None;
        }
        let r = op.as_reg()?;
        let def = self.idx[f.index()].defs.get(&r)?;
        match def {
            Inst::FrameAddr { slot, .. } => Some(Loc::Slot {
                func: f,
                slot: *slot,
            }),
            Inst::GlobalAddr { global, .. } => Some(Loc::Global(*global)),
            Inst::FieldAddr {
                struct_id, field, ..
            } => Some(Loc::Field {
                struct_id: *struct_id,
                field: *field,
            }),
            Inst::IndexAddr { base, .. } => self.resolve_addr(f, *base, depth + 1),
            Inst::Mov { src, .. } => self.resolve_addr(f, *src, depth + 1),
            Inst::Bin {
                op: BinOp::Add | BinOp::Sub,
                a,
                ..
            } => self.resolve_addr(f, *a, depth + 1),
            Inst::Load { addr, .. } => {
                let ploc = self.resolve_addr(f, *addr, depth + 1)?;
                Some(Loc::pointee(ploc))
            }
            _ => None,
        }
    }

    /// Traces a value chain to a spec, enqueueing discovered sensitive locs.
    fn trace_value(&mut self, f: FuncId, op: Operand, depth: u32) -> ValSpec {
        if depth > 16 {
            return ValSpec::Opaque;
        }
        let r = match op {
            Operand::Imm(v) => return ValSpec::Const(v),
            Operand::Reg(r) => r,
        };
        let Some(def) = self.idx[f.index()].defs.get(&r).copied() else {
            return ValSpec::Opaque;
        };
        match def {
            Inst::Mov { src, .. } => self.trace_value(f, *src, depth + 1),
            Inst::Load { addr, .. } => match self.resolve_addr(f, *addr, 0) {
                Some(loc) => ValSpec::Mem(loc),
                None => ValSpec::Opaque,
            },
            Inst::Bin { a, b, op, .. } => {
                // Constant-foldable chains become constants; otherwise both
                // operands join the sensitive set and the value is computed.
                let sa = self.trace_value(f, *a, depth + 1);
                let sb = self.trace_value(f, *b, depth + 1);
                if let (ValSpec::Const(x), ValSpec::Const(y)) = (&sa, &sb) {
                    if let Some(v) = fold(*op, *x, *y) {
                        return ValSpec::Const(v);
                    }
                }
                for s in [sa, sb] {
                    if let ValSpec::Mem(l) = s {
                        self.enqueue(l);
                    }
                }
                ValSpec::Opaque
            }
            Inst::Cmp { .. } => ValSpec::Opaque,
            Inst::FrameAddr { slot, .. } => ValSpec::AddrOf(Loc::Slot {
                func: f,
                slot: *slot,
            }),
            Inst::GlobalAddr { global, .. } => ValSpec::GlobalAddr(*global),
            Inst::FieldAddr {
                struct_id, field, ..
            } => ValSpec::AddrOf(Loc::Field {
                struct_id: *struct_id,
                field: *field,
            }),
            Inst::IndexAddr { base, .. } => match self.resolve_addr(f, *base, 0) {
                Some(l) => ValSpec::AddrOf(l),
                None => ValSpec::Opaque,
            },
            Inst::FuncAddr { .. } => ValSpec::Opaque,
            Inst::Call { callee, .. } => {
                // Trace into the callee's returned values (one level of the
                // §6.3.3 recursion; deeper chains converge via the worklist).
                if let Callee::Direct(callee_id) = callee {
                    if depth < 4 {
                        return self.trace_call_return(*callee_id, depth + 1);
                    }
                }
                ValSpec::Opaque
            }
            Inst::Syscall { .. } | Inst::Store { .. } | Inst::Intrinsic(_) => ValSpec::Opaque,
        }
    }

    fn trace_call_return(&mut self, callee: FuncId, depth: u32) -> ValSpec {
        let f = self.module.func(callee);
        let mut ret_specs = Vec::new();
        for b in &f.blocks {
            if let bastion_ir::Terminator::Ret(Some(v)) = b.term {
                ret_specs.push(self.trace_value(callee, v, depth + 1));
            }
        }
        // All returns must agree on a constant for the value to be constant;
        // memory-backed returns join the sensitive set.
        let mut consts: Vec<i64> = Vec::new();
        for s in &ret_specs {
            match s {
                ValSpec::Const(v) => consts.push(*v),
                ValSpec::Mem(l) => self.enqueue(l.clone()),
                _ => {}
            }
        }
        if ret_specs.len() == 1 {
            return ret_specs.pop().unwrap();
        }
        if !consts.is_empty()
            && consts.len() == ret_specs.len()
            && consts.windows(2).all(|w| w[0] == w[1])
        {
            return ValSpec::Const(consts[0]);
        }
        ValSpec::Opaque
    }

    fn enqueue(&mut self, loc: Loc) {
        if !self.sensitive.contains(&loc) {
            self.queue.push_back(loc);
        }
    }

    fn run(mut self) -> SensitiveReport {
        self.seed_syscall_sites();
        while let Some(loc) = self.queue.pop_front() {
            if !self.sensitive.insert(loc.clone()) {
                continue;
            }
            self.process_loc(&loc);
        }
        self.report.sensitive_locs = self.sensitive;
        self.report
    }

    fn seed_syscall_sites(&mut self) {
        let mut sites = Vec::new();
        for (fid, f) in self.module.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for (i, inst) in b.insts.iter().enumerate() {
                    let Inst::Call {
                        callee: Callee::Direct(target),
                        args,
                        ..
                    } = inst
                    else {
                        continue;
                    };
                    let Some(nr) = self.module.func(*target).syscall_nr() else {
                        continue;
                    };
                    if !self.sensitive_nrs.contains(&nr) {
                        continue;
                    }
                    sites.push((
                        InstLoc {
                            func: fid,
                            block: bid,
                            inst: i,
                        },
                        fid,
                        nr,
                        *target,
                        args.clone(),
                    ));
                }
            }
        }
        for (callsite, fid, nr, stub, args) in sites {
            let extended = bastion_ir::sysno::extended_positions(nr);
            let mut specs = Vec::with_capacity(args.len());
            for (i, arg) in args.iter().enumerate() {
                let pos = (i + 1) as u8;
                let v = self.trace_value(fid, *arg, 0);
                let is_ext = extended.contains(&pos);
                let spec = match v {
                    ValSpec::Const(c) => ArgSpec::Const(c),
                    ValSpec::Mem(l) => {
                        self.enqueue(l.clone());
                        if is_ext {
                            // The pointer is sensitive *and* its pointee
                            // buffer must be shadowed.
                            self.enqueue(Loc::pointee(l.clone()));
                        }
                        ArgSpec::Mem(l)
                    }
                    ValSpec::GlobalAddr(g) => {
                        if is_ext {
                            self.enqueue(Loc::Global(g));
                        }
                        ArgSpec::GlobalAddr(g)
                    }
                    ValSpec::AddrOf(l) => {
                        if is_ext {
                            self.enqueue(l);
                        }
                        ArgSpec::StackAddr
                    }
                    ValSpec::Opaque => ArgSpec::Opaque,
                };
                specs.push(spec);
            }
            self.report.syscall_sites.push(SyscallSite {
                callsite,
                nr,
                stub,
                args: specs,
            });
        }
    }

    fn process_loc(&mut self, loc: &Loc) {
        // 1. Instrument every store writing this class and trace its source.
        let hits: Vec<(FuncId, usize)> = self.store_index.get(loc).cloned().unwrap_or_default();
        for (fid, sidx) in hits {
            let (sloc, _addr, src, width, _res) = self.idx[fid.index()].stores[sidx].clone();
            if self.stores_seen.insert(sloc) {
                self.report.store_sites.push(StoreSite {
                    loc: sloc,
                    target: loc.clone(),
                    width,
                });
            }
            if let ValSpec::Mem(l) = self.trace_value(fid, src, 0) {
                self.enqueue(l);
            }
        }

        // 2. Inter-procedural propagation.
        match loc {
            Loc::Slot { func, slot } if slot.index() < self.module.func(*func).params.len() => {
                // A parameter slot: values flow in from each direct caller.
                self.propagate_param(*func, *slot);
            }
            Loc::Pointee(inner) => {
                if let Loc::Slot { func, slot } = inner.as_ref() {
                    if slot.index() < self.module.func(*func).params.len() {
                        // A pointer parameter: the pointee objects live in
                        // callers; discover them from each call argument.
                        self.propagate_pointer_param(*func, *slot);
                    }
                }
                // Identify the pointee objects named by pointers stored
                // into `inner`: `ctx->path = upgrade_path` makes the
                // upgrade_path buffer itself sensitive (its bytes back an
                // extended argument).
                let inner_hits: Vec<(FuncId, usize)> = self
                    .store_index
                    .get(inner.as_ref())
                    .cloned()
                    .unwrap_or_default();
                for (fid, sidx) in inner_hits {
                    let src = self.idx[fid.index()].stores[sidx].2;
                    match self.trace_value(fid, src, 0) {
                        ValSpec::GlobalAddr(g) => self.enqueue(Loc::Global(g)),
                        ValSpec::AddrOf(l) => self.enqueue(l),
                        _ => {}
                    }
                }
            }
            _ => {}
        }

        // 3. Forward aliasing through address-of arguments: if &L is passed
        // to a callee, writes through that callee's pointer parameter can
        // write L, so those stores are instrumented ("Bastion instruments
        // all possible use-def chains", §6.3.3) — covering
        // `strcpy(sensitive_buf, src)`-style initialization. The marking is
        // instrumentation-only: it keeps the sensitive-variable worklist
        // untouched so unrelated callers of the same helper do not become
        // sensitive transitively.
        if !matches!(loc, Loc::Pointee(_)) {
            for (callee, param) in self.addr_taken_args.get(loc).cloned().unwrap_or_default() {
                self.instrument_ptr_param(callee, param);
            }
        }
    }

    /// Instruments every store reached through pointer parameter `slot` of
    /// `f`, following the pointer transitively into further callees
    /// (`strcat(dst, ..)` → `strcpy(dst + n, ..)`).
    fn instrument_ptr_param(&mut self, f: FuncId, slot: SlotId) {
        if !self.instr_params.insert((f, slot)) {
            return;
        }
        let key = Loc::pointee(Loc::Slot { func: f, slot });
        let hits: Vec<(FuncId, usize)> = self.store_index.get(&key).cloned().unwrap_or_default();
        for (fid, sidx) in hits {
            let (sloc, _addr, _src, width, _res) = self.idx[fid.index()].stores[sidx].clone();
            if self.stores_seen.insert(sloc) {
                self.report.store_sites.push(StoreSite {
                    loc: sloc,
                    target: key.clone(),
                    width,
                });
            }
        }
        // Transitive hand-off of the pointer to further callees.
        let func = self.module.func(f);
        let mut forwards = Vec::new();
        for b in &func.blocks {
            for inst in &b.insts {
                let Inst::Call {
                    callee: Callee::Direct(target),
                    args,
                    ..
                } = inst
                else {
                    continue;
                };
                for (i, arg) in args.iter().enumerate() {
                    if i >= self.module.func(*target).params.len() {
                        break;
                    }
                    if self.derives_from_param(f, *arg, slot, 0) {
                        forwards.push((*target, SlotId(i as u32)));
                    }
                }
            }
        }
        for (callee, param) in forwards {
            self.instrument_ptr_param(callee, param);
        }
    }

    /// Whether `op`'s value derives from the pointer parameter `slot` of
    /// `f` (possibly with an offset).
    fn derives_from_param(&self, f: FuncId, op: Operand, slot: SlotId, depth: u32) -> bool {
        if depth > 16 {
            return false;
        }
        let Some(r) = op.as_reg() else { return false };
        match self.idx[f.index()].defs.get(&r) {
            Some(Inst::Load { addr, .. }) => {
                self.addr_value(f, *addr) == Some(Loc::Slot { func: f, slot })
            }
            Some(Inst::Mov { src, .. }) => self.derives_from_param(f, *src, slot, depth + 1),
            Some(Inst::Bin { a, .. }) => self.derives_from_param(f, *a, slot, depth + 1),
            Some(Inst::IndexAddr { base, .. }) => {
                self.derives_from_param(f, *base, slot, depth + 1)
            }
            _ => false,
        }
    }

    /// A parameter slot is sensitive: trace each caller's argument
    /// expression and record a propagation binding at the callsite.
    fn propagate_param(&mut self, callee: FuncId, slot: SlotId) {
        self.report.param_spills.insert((callee, slot));
        let pos = (slot.index() + 1) as u8;
        let callers: Vec<InstLoc> = self.cg.callers_of(callee).to_vec();
        for site in callers {
            let arg = self.call_arg_at(site, slot.index());
            let Some(arg) = arg else { continue };
            let v = self.trace_value(site.func, arg, 0);
            let spec = match v {
                ValSpec::Const(c) => ArgSpec::Const(c),
                ValSpec::Mem(l) => {
                    self.enqueue(l.clone());
                    ArgSpec::Mem(l)
                }
                ValSpec::GlobalAddr(g) => ArgSpec::GlobalAddr(g),
                ValSpec::AddrOf(_) => ArgSpec::StackAddr,
                ValSpec::Opaque => ArgSpec::Opaque,
            };
            if self.prop_seen.insert((site, pos)) {
                if let Some(ps) = self
                    .report
                    .prop_sites
                    .iter_mut()
                    .find(|p| p.callsite == site)
                {
                    ps.args.push((pos, spec));
                    ps.args.sort_by_key(|(p, _)| *p);
                } else {
                    self.report.prop_sites.push(PropSite {
                        callsite: site,
                        callee,
                        args: vec![(pos, spec)],
                    });
                }
            }
        }
    }

    /// The pointee of pointer parameter `slot` is sensitive: find what
    /// callers pass and mark those objects sensitive.
    fn propagate_pointer_param(&mut self, callee: FuncId, slot: SlotId) {
        let callers: Vec<InstLoc> = self.cg.callers_of(callee).to_vec();
        for site in callers {
            let Some(arg) = self.call_arg_at(site, slot.index()) else {
                continue;
            };
            match self.trace_value(site.func, arg, 0) {
                ValSpec::AddrOf(l) => self.enqueue(l),
                ValSpec::GlobalAddr(g) => self.enqueue(Loc::Global(g)),
                ValSpec::Mem(l) => self.enqueue(Loc::pointee(l)),
                _ => {}
            }
        }
    }

    fn call_arg_at(&self, site: InstLoc, idx: usize) -> Option<Operand> {
        let f = self.module.func(site.func);
        let inst = &f.blocks[site.block.index()].insts[site.inst];
        if let Inst::Call { args, .. } = inst {
            args.get(idx).copied()
        } else {
            None
        }
    }
}

fn fold(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
        BinOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::sysno;
    use bastion_ir::Ty;

    /// Reproduces the shape of Figure 2:
    ///
    /// ```c
    /// void foo() { int flags = MAP_ANONYMOUS|MAP_SHARED; bar(1, 2, flags); }
    /// void bar(int b0, int b1, int b2) {
    ///     int prots = PROT_READ|PROT_WRITE;
    ///     mmap(NULL, gsize, prots, b2, -1, 0);
    /// }
    /// ```
    fn figure2_module() -> Module {
        let mut mb = ModuleBuilder::new("fig2");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let gsize = mb.global("gsize", Ty::I64, bastion_ir::GlobalInit::Words(vec![4096]));
        let bar = mb.declare(
            "bar",
            &[("b0", Ty::I64), ("b1", Ty::I64), ("b2", Ty::I64)],
            Ty::Void,
        );

        let mut f = mb.function("foo", &[], Ty::Void);
        let flags = f.local("flags", Ty::I64);
        let fa = f.frame_addr(flags);
        f.store(fa, 0x21i64); // MAP_ANONYMOUS|MAP_SHARED
        let fa2 = f.frame_addr(flags);
        let fv = f.load(fa2);
        let _ = f.call_direct(bar, &[1i64.into(), 2i64.into(), fv.into()]);
        f.ret(None);
        f.finish();

        let mut f = mb.define(bar);
        let prots = f.local("prots", Ty::I64);
        let pa = f.frame_addr(prots);
        f.store(pa, 3i64); // PROT_READ|PROT_WRITE
        let ga = f.global_addr(gsize);
        let gv = f.load(ga);
        let pa2 = f.frame_addr(prots);
        let pv = f.load(pa2);
        let b2a = f.frame_addr(f.param_slot(2));
        let b2v = f.load(b2a);
        let _ = f.call_direct(
            mmap,
            &[
                0i64.into(),
                gv.into(),
                pv.into(),
                b2v.into(),
                (-1i64).into(),
                0i64.into(),
            ],
        );
        f.ret(None);
        f.finish();

        let foo = mb.module().func_by_name("foo").unwrap();
        let mut f = mb.function("main", &[], Ty::I64);
        let _ = f.call_direct(foo, &[]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        mb.finish()
    }

    fn analyze(m: &Module) -> SensitiveReport {
        let cg = CallGraph::build(m);
        SensitiveReport::build(m, &cg, &sysno::sensitive_set())
    }

    #[test]
    fn figure2_arg_specs() {
        let m = figure2_module();
        let r = analyze(&m);
        assert_eq!(r.syscall_sites.len(), 1);
        let site = &r.syscall_sites[0];
        assert_eq!(site.nr, sysno::MMAP);
        // NULL, gsize, prots, b2, -1, 0
        assert_eq!(site.args[0], ArgSpec::Const(0));
        assert!(matches!(site.args[1], ArgSpec::Mem(Loc::Global(_))));
        assert!(matches!(site.args[2], ArgSpec::Mem(Loc::Slot { .. })));
        assert!(matches!(site.args[3], ArgSpec::Mem(Loc::Slot { .. })));
        assert_eq!(site.args[4], ArgSpec::Const(-1));
        assert_eq!(site.args[5], ArgSpec::Const(0));
    }

    #[test]
    fn figure2_interprocedural_propagation() {
        let m = figure2_module();
        let r = analyze(&m);
        let foo = m.func_by_name("foo").unwrap();
        // flags in foo is sensitive because b2 <- flags.
        assert!(r
            .sensitive_locs
            .iter()
            .any(|l| matches!(l, Loc::Slot { func, .. } if *func == foo)));
        // The bar() callsite gets a binding for position 3.
        assert_eq!(r.prop_sites.len(), 1);
        let ps = &r.prop_sites[0];
        assert_eq!(ps.callee, m.func_by_name("bar").unwrap());
        assert_eq!(ps.args.len(), 1);
        assert_eq!(ps.args[0].0, 3);
        assert!(ps.args[0].1.is_mem());
    }

    #[test]
    fn figure2_store_instrumentation() {
        let m = figure2_module();
        let r = analyze(&m);
        // Stores to flags (foo) and prots (bar) are instrumented, plus the
        // implicit spill of the sensitive parameter b2 at bar's entry.
        assert_eq!(r.store_sites.len(), 2);
        assert_eq!(r.param_spills.len(), 1);
        assert_eq!(r.write_mem_count(), 3);
        // mmap binds: gsize, prots, b2 are mem; plus the prop-site flags.
        assert_eq!(r.bind_mem_count(), 4);
        // mmap consts: NULL, -1, 0.
        assert_eq!(r.bind_const_count(), 3);
    }

    #[test]
    fn extended_argument_marks_pointee_sensitive() {
        // execve(path_ptr, 0, 0) where path_ptr is loaded from a global
        // pointer variable; its pointee must become sensitive.
        let mut mb = ModuleBuilder::new("ext");
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let gptr = mb.global("path_ptr", Ty::ptr(Ty::I8), bastion_ir::GlobalInit::Zero);
        let mut f = mb.function("main", &[], Ty::I64);
        let ga = f.global_addr(gptr);
        let p = f.load(ga);
        let _ = f.call_direct(execve, &[p.into(), 0i64.into(), 0i64.into()]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let m = mb.finish();
        let r = analyze(&m);
        assert!(r.sensitive_locs.contains(&Loc::pointee(Loc::Global(gptr))));
        assert!(r.sensitive_locs.contains(&Loc::Global(gptr)));
    }

    #[test]
    fn field_sensitive_class_catches_all_field_writes() {
        // struct ctx { i64 path; }; two functions write ctx.path through
        // different pointers; a syscall reads it through a third. All writes
        // are instrumented because the class is (struct, field).
        let mut mb = ModuleBuilder::new("fields");
        let st = mb.struct_def(bastion_ir::StructDef::new(
            "ctx",
            vec![("path".into(), Ty::I64)],
        ));
        let chmod = mb.declare_syscall_stub("chmod", sysno::CHMOD, 2);
        let gobj = mb.global("obj", Ty::Struct(st), bastion_ir::GlobalInit::Zero);

        let mut f = mb.function("writer", &[("c", Ty::ptr(Ty::Struct(st)))], Ty::Void);
        let ca = f.frame_addr(f.param_slot(0));
        let c = f.load(ca);
        let fld = f.field_addr(c, st, 0);
        f.store(fld, 0x1234i64);
        f.ret(None);
        f.finish();

        let mut f = mb.function("main", &[], Ty::I64);
        let oa = f.global_addr(gobj);
        let fld = f.field_addr(oa, st, 0);
        let v = f.load(fld);
        let _ = f.call_direct(chmod, &[v.into(), 0o755i64.into()]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let m = mb.finish();
        let r = analyze(&m);
        assert!(r.sensitive_locs.contains(&Loc::Field {
            struct_id: st,
            field: 0
        }));
        // The store in `writer` (through a pointer) is instrumented.
        let writer_id = m.func_by_name("writer").unwrap();
        assert!(r.store_sites.iter().any(|s| s.loc.func == writer_id));
    }

    #[test]
    fn opaque_when_unresolvable() {
        // A syscall argument computed from two loaded values is opaque, but
        // both source variables still join the sensitive set.
        let mut mb = ModuleBuilder::new("opq");
        let setuid = mb.declare_syscall_stub("setuid", sysno::SETUID, 1);
        let mut f = mb.function("main", &[], Ty::I64);
        let a = f.local("a", Ty::I64);
        let b = f.local("b", Ty::I64);
        let aa = f.frame_addr(a);
        f.store(aa, 1i64);
        let ba = f.frame_addr(b);
        f.store(ba, 2i64);
        let aa2 = f.frame_addr(a);
        let av = f.load(aa2);
        let ba2 = f.frame_addr(b);
        let bv = f.load(ba2);
        let sum = f.bin(BinOp::Add, av, bv);
        let _ = f.call_direct(setuid, &[sum.into()]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let m = mb.finish();
        let r = analyze(&m);
        assert_eq!(r.syscall_sites[0].args[0], ArgSpec::Opaque);
        assert_eq!(r.write_mem_count(), 2);
    }
}
