//! Whole-module call graph.
//!
//! Enumerates every call instruction with its location and callee kind, the
//! set of direct callers per function, and the set of address-taken
//! functions (taken either by an [`Inst::FuncAddr`] instruction or by a
//! relocated global initializer such as a handler table).

use bastion_ir::module::{GlobalInit, RelocEntry};
use bastion_ir::{Callee, FuncId, Inst, InstLoc, Module};
use std::collections::{BTreeMap, BTreeSet};

/// Whether a callsite is a direct or an indirect call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallsiteKind {
    /// Direct call to the named function.
    Direct(FuncId),
    /// Indirect call through a code pointer.
    Indirect,
}

/// One call instruction in the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallsiteRec {
    /// Where the call instruction lives.
    pub loc: InstLoc,
    /// Direct target or indirect.
    pub kind: CallsiteKind,
    /// Number of arguments passed.
    pub argc: usize,
}

/// The module call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Every call instruction, in function/block order.
    pub callsites: Vec<CallsiteRec>,
    /// Direct callers of each function: callee → callsites.
    pub direct_callers: BTreeMap<FuncId, Vec<InstLoc>>,
    /// Functions whose address is taken (possible indirect-call targets).
    pub address_taken: BTreeSet<FuncId>,
    /// All indirect callsites.
    pub indirect_sites: Vec<InstLoc>,
}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn build(module: &Module) -> Self {
        let mut callsites = Vec::new();
        let mut direct_callers: BTreeMap<FuncId, Vec<InstLoc>> = BTreeMap::new();
        let mut address_taken = BTreeSet::new();
        let mut indirect_sites = Vec::new();

        for g in &module.globals {
            if let GlobalInit::Relocated(entries) = &g.init {
                for e in entries {
                    if let RelocEntry::FuncAddr(f) = e {
                        address_taken.insert(*f);
                    }
                }
            }
        }

        for (fid, f) in module.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for (i, inst) in b.insts.iter().enumerate() {
                    let loc = InstLoc {
                        func: fid,
                        block: bid,
                        inst: i,
                    };
                    match inst {
                        Inst::Call { callee, args, .. } => {
                            let kind = match callee {
                                Callee::Direct(t) => {
                                    direct_callers.entry(*t).or_default().push(loc);
                                    CallsiteKind::Direct(*t)
                                }
                                Callee::Indirect(_) => {
                                    indirect_sites.push(loc);
                                    CallsiteKind::Indirect
                                }
                            };
                            callsites.push(CallsiteRec {
                                loc,
                                kind,
                                argc: args.len(),
                            });
                        }
                        Inst::FuncAddr { func, .. } => {
                            address_taken.insert(*func);
                        }
                        _ => {}
                    }
                }
            }
        }

        CallGraph {
            callsites,
            direct_callers,
            address_taken,
            indirect_sites,
        }
    }

    /// Direct callsites targeting `callee`.
    pub fn callers_of(&self, callee: FuncId) -> &[InstLoc] {
        self.direct_callers
            .get(&callee)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `f`'s address is taken anywhere in the module.
    pub fn is_address_taken(&self, f: FuncId) -> bool {
        self.address_taken.contains(&f)
    }

    /// Total number of callsites (Table 5 row 1).
    pub fn total_callsites(&self) -> usize {
        self.callsites.len()
    }

    /// Number of direct callsites (Table 5 row 2).
    pub fn direct_callsites(&self) -> usize {
        self.callsites
            .iter()
            .filter(|c| matches!(c.kind, CallsiteKind::Direct(_)))
            .count()
    }

    /// Number of indirect callsites (Table 5 row 3).
    pub fn indirect_callsites(&self) -> usize {
        self.indirect_sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::module::GlobalInit;
    use bastion_ir::{Operand, Ty};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("cg");
        let callee = mb.declare("callee", &[], Ty::I64);
        let tbl = mb.global(
            "handlers",
            Ty::Array(Box::new(Ty::Func { arity: 0 }), 2),
            GlobalInit::Relocated(vec![RelocEntry::FuncAddr(callee), RelocEntry::Word(0)]),
        );
        let mut f = mb.function("main", &[], Ty::I64);
        let direct = f.call_direct(callee, &[]);
        let t = f.global_addr(tbl);
        let fp = f.load(t);
        let indirect = f.call_indirect(fp, &[]);
        let sum = f.bin(bastion_ir::BinOp::Add, direct, indirect);
        f.ret(Some(Operand::Reg(sum)));
        f.finish();
        let mut g = mb.define(callee);
        g.ret(Some(Operand::Imm(1)));
        g.finish();
        mb.finish()
    }

    #[test]
    fn counts_and_kinds() {
        let m = sample();
        let cg = CallGraph::build(&m);
        assert_eq!(cg.total_callsites(), 2);
        assert_eq!(cg.direct_callsites(), 1);
        assert_eq!(cg.indirect_callsites(), 1);
    }

    #[test]
    fn reloc_tables_mark_address_taken() {
        let m = sample();
        let cg = CallGraph::build(&m);
        let callee = m.func_by_name("callee").unwrap();
        assert!(cg.is_address_taken(callee));
        let main = m.func_by_name("main").unwrap();
        assert!(!cg.is_address_taken(main));
    }

    #[test]
    fn callers_of_tracks_direct_edges() {
        let m = sample();
        let cg = CallGraph::build(&m);
        let callee = m.func_by_name("callee").unwrap();
        assert_eq!(cg.callers_of(callee).len(), 1);
        assert_eq!(
            cg.callers_of(callee)[0].func,
            m.func_by_name("main").unwrap()
        );
    }

    #[test]
    fn func_addr_instruction_marks_address_taken() {
        let mut mb = ModuleBuilder::new("t");
        let target = mb.declare("target", &[], Ty::Void);
        let mut f = mb.function("main", &[], Ty::Void);
        let _ = f.func_addr(target);
        f.ret(None);
        f.finish();
        let mut g = mb.define(target);
        g.ret(None);
        g.finish();
        let m = mb.finish();
        let cg = CallGraph::build(&m);
        assert!(cg.is_address_taken(target));
    }
}
