//! Call-Type context analysis (paper §6.1).
//!
//! Classifies every system call a program image could reach into
//! *not-callable*, *directly-callable*, *indirectly-callable*, or both:
//!
//! * a syscall stub that appears as the target of a direct call is
//!   **directly-callable**;
//! * a stub whose address is taken (by an instruction or a relocated global
//!   initializer) can end up as an indirect-call target, so it is
//!   **indirectly-callable**;
//! * every other syscall — present in the linked libc image or not — is
//!   **not-callable** and is disabled outright by the monitor's seccomp
//!   filter.

use crate::callgraph::CallGraph;
use bastion_ir::{FuncId, InstLoc, Module};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The call-type class of one system call (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallTypeClass {
    /// Never used by the program: any invocation is an attack.
    NotCallable,
    /// Only ever invoked from direct callsites.
    DirectOnly,
    /// Only ever reachable through an indirect call (address taken but no
    /// direct callsite — rare, but expressible).
    IndirectOnly,
    /// Both direct callsites exist and the address is taken.
    Both,
}

impl CallTypeClass {
    /// Whether a direct invocation is permitted.
    pub fn allows_direct(self) -> bool {
        matches!(self, CallTypeClass::DirectOnly | CallTypeClass::Both)
    }

    /// Whether an indirect invocation is permitted.
    pub fn allows_indirect(self) -> bool {
        matches!(self, CallTypeClass::IndirectOnly | CallTypeClass::Both)
    }

    /// Whether the syscall may be invoked at all.
    pub fn callable(self) -> bool {
        self != CallTypeClass::NotCallable
    }
}

/// Result of call-type analysis over a module.
#[derive(Debug, Clone)]
pub struct CallTypeReport {
    /// Classification per syscall number, for every stub in the image.
    pub classes: BTreeMap<u32, CallTypeClass>,
    /// Direct callsites of each syscall stub: nr → call locations.
    pub direct_sites: BTreeMap<u32, Vec<InstLoc>>,
    /// Stub function per syscall number.
    pub stubs: BTreeMap<u32, FuncId>,
}

impl CallTypeReport {
    /// Runs the analysis.
    pub fn build(module: &Module, cg: &CallGraph) -> Self {
        let mut classes = BTreeMap::new();
        let mut direct_sites = BTreeMap::new();
        let mut stubs = BTreeMap::new();
        for (fid, f) in module.iter_funcs() {
            let Some(nr) = f.syscall_nr() else { continue };
            stubs.insert(nr, fid);
            let direct: Vec<InstLoc> = cg.callers_of(fid).to_vec();
            let taken = cg.is_address_taken(fid);
            let class = match (!direct.is_empty(), taken) {
                (false, false) => CallTypeClass::NotCallable,
                (true, false) => CallTypeClass::DirectOnly,
                (false, true) => CallTypeClass::IndirectOnly,
                (true, true) => CallTypeClass::Both,
            };
            classes.insert(nr, class);
            direct_sites.insert(nr, direct);
        }
        CallTypeReport {
            classes,
            direct_sites,
            stubs,
        }
    }

    /// The class for syscall `nr`; stubs absent from the image are
    /// [`CallTypeClass::NotCallable`].
    pub fn class_of(&self, nr: u32) -> CallTypeClass {
        self.classes
            .get(&nr)
            .copied()
            .unwrap_or(CallTypeClass::NotCallable)
    }

    /// Syscalls (sensitive or not) that can never be invoked.
    pub fn not_callable(&self) -> impl Iterator<Item = u32> + '_ {
        self.classes
            .iter()
            .filter(|(_, c)| !c.callable())
            .map(|(nr, _)| *nr)
    }

    /// Number of *sensitive* syscalls that are callable indirectly
    /// (Table 5 row 5 — zero for all three paper applications).
    pub fn sensitive_indirect_count(&self) -> usize {
        self.classes
            .iter()
            .filter(|(nr, c)| bastion_ir::sysno::is_sensitive(**nr) && c.allows_indirect())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::sysno;
    use bastion_ir::{Operand, Ty};

    /// Image with: execve called directly; write address-taken only;
    /// mprotect present but unused; read called directly *and* taken.
    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("ct");
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let write = mb.declare_syscall_stub("write", sysno::WRITE, 3);
        let _mprotect = mb.declare_syscall_stub("mprotect", sysno::MPROTECT, 3);
        let read = mb.declare_syscall_stub("read", sysno::READ, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let z = Operand::Imm(0);
        let _ = f.call_direct(execve, &[z, z, z]);
        let wp = f.func_addr(write);
        let rp = f.func_addr(read);
        let _ = f.call_indirect(wp, &[z, z, z]);
        let _ = f.call_indirect(rp, &[z, z, z]);
        let r = f.call_direct(read, &[z, z, z]);
        f.ret(Some(r.into()));
        f.finish();
        mb.finish()
    }

    #[test]
    fn four_way_classification() {
        let m = sample();
        let cg = CallGraph::build(&m);
        let ct = CallTypeReport::build(&m, &cg);
        assert_eq!(ct.class_of(sysno::EXECVE), CallTypeClass::DirectOnly);
        assert_eq!(ct.class_of(sysno::WRITE), CallTypeClass::IndirectOnly);
        assert_eq!(ct.class_of(sysno::MPROTECT), CallTypeClass::NotCallable);
        assert_eq!(ct.class_of(sysno::READ), CallTypeClass::Both);
        // A syscall with no stub at all is not callable either.
        assert_eq!(ct.class_of(sysno::PTRACE), CallTypeClass::NotCallable);
    }

    #[test]
    fn permission_helpers() {
        assert!(CallTypeClass::DirectOnly.allows_direct());
        assert!(!CallTypeClass::DirectOnly.allows_indirect());
        assert!(CallTypeClass::Both.allows_indirect());
        assert!(!CallTypeClass::NotCallable.callable());
        assert!(CallTypeClass::IndirectOnly.allows_indirect());
        assert!(!CallTypeClass::IndirectOnly.allows_direct());
    }

    #[test]
    fn not_callable_enumeration_and_sites() {
        let m = sample();
        let cg = CallGraph::build(&m);
        let ct = CallTypeReport::build(&m, &cg);
        let nc: Vec<u32> = ct.not_callable().collect();
        assert_eq!(nc, vec![sysno::MPROTECT]);
        assert_eq!(ct.direct_sites[&sysno::EXECVE].len(), 1);
        assert!(ct.direct_sites[&sysno::WRITE].is_empty());
    }

    #[test]
    fn sensitive_indirect_count_counts_only_sensitive() {
        let m = sample();
        let cg = CallGraph::build(&m);
        let ct = CallTypeReport::build(&m, &cg);
        // write/read are indirectly callable but not sensitive; execve is
        // sensitive but direct-only.
        assert_eq!(ct.sensitive_indirect_count(), 0);
    }
}
