//! # bastion-analysis
//!
//! The static analyses the BASTION compiler pass (paper §6) runs over a
//! [`bastion_ir::Module`]:
//!
//! * [`callgraph`] — enumerates every callsite (direct and indirect) and
//!   every address-taken function; the raw material for everything else.
//! * [`calltype`] — §6.1: classifies each system call as *not-callable*,
//!   *directly-callable*, and/or *indirectly-callable*.
//! * [`paths`] — §6.2: for every sensitive system call callsite, records the
//!   callee→caller relations along all control-flow paths that reach it,
//!   stopping at `main` or at indirect callsites.
//! * [`sensitive`] — §6.3: the field-sensitive, inter-procedural use-def
//!   analysis that discovers *sensitive variables* (system call arguments
//!   and everything that defines them) and decides where instrumentation
//!   must be placed.
//! * [`sysflow`] — the main-rooted syscall-flow automaton (initial
//!   sensitive nrs + ordered adjacency edges) the tier-1 prefilter
//!   evaluates as a per-pid state machine.
//! * [`typesig`] — the equivalence classes coarse LLVM CFI would build
//!   (address-taken functions grouped by type signature); used by the
//!   `bastion-defenses` baseline.

pub mod callgraph;
pub mod calltype;
pub mod paths;
pub mod sensitive;
pub mod sysflow;
pub mod typesig;

pub use callgraph::{CallGraph, CallsiteKind, CallsiteRec};
pub use calltype::{CallTypeClass, CallTypeReport};
pub use paths::ControlFlowReport;
pub use sensitive::{ArgSpec, Loc, PropSite, SensitiveReport, StoreSite, SyscallSite};
pub use sysflow::SyscallFlow;
pub use typesig::TypeSigReport;
