//! Control-Flow context analysis (paper §6.2).
//!
//! For each *sensitive* system call, BASTION records all function
//! callee→caller relations along control-flow paths that can reach the
//! syscall's callsites. The recursion stops at `main` or at a function that
//! can be entered through an indirect call (its address is taken), because
//! at runtime the monitor's stack walk terminates there and validates the
//! partial trace it has seen so far.
//!
//! The report therefore contains, per function in the syscall-reaching
//! subgraph:
//! * the set of valid direct caller callsites, and
//! * whether the function may legitimately sit at the top of a partial
//!   trace (i.e. may be entered indirectly).

use crate::callgraph::CallGraph;
use bastion_ir::{FuncId, InstLoc, Module};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Result of the control-flow context analysis.
#[derive(Debug, Clone)]
pub struct ControlFlowReport {
    /// Functions from which a sensitive syscall callsite is reachable
    /// (the "syscall-reaching subgraph" the runtime walk must stay inside).
    pub reaching: BTreeSet<FuncId>,
    /// callee → valid direct caller callsites (paper: "pairs of callee and
    /// caller addresses").
    pub valid_callers: BTreeMap<FuncId, BTreeSet<InstLoc>>,
    /// Functions in the subgraph that may be entered via an indirect call;
    /// the runtime walk may legitimately terminate at these.
    pub indirect_entries: BTreeSet<FuncId>,
    /// The `main` function, where complete walks terminate.
    pub main: Option<FuncId>,
}

impl ControlFlowReport {
    /// Runs the analysis for the given set of sensitive syscall numbers.
    pub fn build(module: &Module, cg: &CallGraph, sensitive: &BTreeSet<u32>) -> Self {
        let main = module.func_by_name("main");
        let mut reaching = BTreeSet::new();
        let mut valid_callers: BTreeMap<FuncId, BTreeSet<InstLoc>> = BTreeMap::new();
        let mut indirect_entries = BTreeSet::new();

        // Seed: stubs of sensitive syscalls present in the image.
        let mut queue: VecDeque<FuncId> = module
            .iter_funcs()
            .filter(|(_, f)| f.syscall_nr().is_some_and(|nr| sensitive.contains(&nr)))
            .map(|(id, _)| id)
            .collect();

        // Reverse BFS over direct call edges, recording callee→caller pairs.
        while let Some(callee) = queue.pop_front() {
            if !reaching.insert(callee) {
                continue;
            }
            if cg.is_address_taken(callee) {
                indirect_entries.insert(callee);
                // The paper's recursion stops at an indirect call: the walk
                // ends here at runtime. Static analysis still records direct
                // callers (a frame entered directly must match them), and
                // keeps walking — a function can be reached both ways.
            }
            for &site in cg.callers_of(callee) {
                valid_callers.entry(callee).or_default().insert(site);
                if Some(site.func) != main {
                    queue.push_back(site.func);
                } else {
                    reaching.insert(site.func);
                }
            }
        }
        if let Some(m) = main {
            // main may always be the walk's bottom even if it calls nothing
            // sensitive itself.
            let _ = m;
        }

        ControlFlowReport {
            reaching,
            valid_callers,
            indirect_entries,
            main,
        }
    }

    /// Whether `site` is a valid direct caller of `callee`.
    pub fn is_valid_edge(&self, callee: FuncId, site: InstLoc) -> bool {
        self.valid_callers
            .get(&callee)
            .is_some_and(|s| s.contains(&site))
    }

    /// Whether the runtime stack walk may legitimately terminate at `f`
    /// (either `main` or an indirect entry).
    pub fn may_terminate_at(&self, f: FuncId) -> bool {
        Some(f) == self.main || self.indirect_entries.contains(&f)
    }

    /// Total number of recorded callee→caller pairs.
    pub fn edge_count(&self) -> usize {
        self.valid_callers.values().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::sysno;
    use bastion_ir::{Operand, Ty};

    /// main -> a -> b -> execve ; main -> c (no syscall) ;
    /// handler (address taken) -> b.
    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("cf");
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let b = mb.declare("b", &[], Ty::Void);
        let a = mb.declare("a", &[], Ty::Void);
        let c = mb.declare("c", &[], Ty::Void);
        let handler = mb.declare("handler", &[], Ty::Void);

        let mut f = mb.define(b);
        let z = Operand::Imm(0);
        let _ = f.call_direct(execve, &[z, z, z]);
        f.ret(None);
        f.finish();

        let mut f = mb.define(a);
        let _ = f.call_direct(b, &[]);
        f.ret(None);
        f.finish();

        let mut f = mb.define(c);
        f.ret(None);
        f.finish();

        let mut f = mb.define(handler);
        let _ = f.call_direct(b, &[]);
        f.ret(None);
        f.finish();

        let mut f = mb.function("main", &[], Ty::I64);
        let _ = f.call_direct(a, &[]);
        let _ = f.call_direct(c, &[]);
        let hp = f.func_addr(handler);
        let _ = f.call_indirect(hp, &[]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        mb.finish()
    }

    fn build(m: &Module) -> ControlFlowReport {
        let cg = CallGraph::build(m);
        ControlFlowReport::build(m, &cg, &sysno::sensitive_set())
    }

    #[test]
    fn reaching_subgraph_excludes_unrelated_functions() {
        let m = sample();
        let r = build(&m);
        let f = |n: &str| m.func_by_name(n).unwrap();
        assert!(r.reaching.contains(&f("execve")));
        assert!(r.reaching.contains(&f("b")));
        assert!(r.reaching.contains(&f("a")));
        assert!(r.reaching.contains(&f("handler")));
        assert!(!r.reaching.contains(&f("c")));
    }

    #[test]
    fn valid_edges_match_static_callsites() {
        let m = sample();
        let r = build(&m);
        let f = |n: &str| m.func_by_name(n).unwrap();
        // b has two valid callers: the callsite in a and in handler.
        assert_eq!(r.valid_callers[&f("b")].len(), 2);
        // execve's only valid caller is the callsite in b.
        let sites = &r.valid_callers[&f("execve")];
        assert_eq!(sites.len(), 1);
        assert_eq!(sites.iter().next().unwrap().func, f("b"));
    }

    #[test]
    fn termination_points() {
        let m = sample();
        let r = build(&m);
        let f = |n: &str| m.func_by_name(n).unwrap();
        assert!(r.may_terminate_at(f("main")));
        assert!(r.may_terminate_at(f("handler"))); // address-taken
        assert!(!r.may_terminate_at(f("a")));
        assert!(!r.may_terminate_at(f("b")));
    }

    #[test]
    fn edge_validity_queries() {
        let m = sample();
        let r = build(&m);
        let f = |n: &str| m.func_by_name(n).unwrap();
        let b_sites = r.valid_callers[&f("b")].clone();
        for s in &b_sites {
            assert!(r.is_valid_edge(f("b"), *s));
        }
        // A fabricated edge is invalid.
        let bogus = InstLoc {
            func: f("c"),
            block: bastion_ir::BlockId(0),
            inst: 0,
        };
        assert!(!r.is_valid_edge(f("b"), bogus));
        assert!(r.edge_count() >= 4);
    }
}
