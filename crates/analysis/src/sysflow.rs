//! Syscall-flow automaton (SFIP-style edge-precise ordering).
//!
//! Computes, over the *sensitive* syscall alphabet, which syscall numbers
//! can be the **first** sensitive trap of a `main`-rooted execution and
//! which ordered **pairs** `(a, b)` can appear as consecutive sensitive
//! traps. The tier-1 prefilter evaluates the result as a per-pid state
//! machine: any trap whose transition is not in the table escalates to
//! the full monitor (never denies), so over-approximation here only
//! trades escalations — soundness requires covering every *feasible*
//! clean-path sequence, which the analysis guarantees by unioning over
//! all branches, fixpointing over loops and recursion, and fanning
//! indirect calls out to every address-taken function.
//!
//! The analysis is a standard interprocedural summary fixpoint: each
//! function gets a [`FlowSummary`] — the sensitive nrs its execution can
//! emit first, the nrs it can emit last, and whether it can complete
//! without emitting any (`eps`) — and each basic block is a sequence of
//! callee-summary "events" folded left to right. Internal consecutive
//! pairs are accumulated globally into the edge set.

use crate::callgraph::CallGraph;
use bastion_ir::module::FuncKind;
use bastion_ir::{Callee, Inst, Module, Terminator};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The main-rooted syscall-flow automaton over the sensitive alphabet.
///
/// Serialized into the compiler's context metadata; an empty value (the
/// `Default`) means "no flow information" and consumers fall back to
/// coarser reachability.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SyscallFlow {
    /// Sensitive nrs that can be the first trap of a `main` execution.
    pub initial: BTreeSet<u32>,
    /// Ordered pairs `(a, b)`: trap `b` can immediately follow trap `a`.
    pub edges: BTreeSet<(u32, u32)>,
}

impl SyscallFlow {
    /// True when the automaton carries no information (e.g. metadata
    /// predating the analysis, or a module with no `main`).
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty() && self.edges.is_empty()
    }
}

/// Per-function summary: first/last emittable sensitive nrs plus whether
/// the function can run to completion emitting nothing.
#[derive(Debug, Clone, Default, PartialEq)]
struct FlowSummary {
    first: BTreeSet<u32>,
    last: BTreeSet<u32>,
    eps: bool,
}

/// Block dataflow state: the set of nrs that may have been emitted last
/// so far, plus whether "nothing emitted yet" is still possible (`bot`).
#[derive(Debug, Clone, PartialEq)]
struct BlockState {
    last: BTreeSet<u32>,
    bot: bool,
}

impl BlockState {
    fn entry() -> Self {
        BlockState {
            last: BTreeSet::new(),
            bot: true,
        }
    }

    fn join(&mut self, other: &BlockState) -> bool {
        let before = (self.last.len(), self.bot);
        self.last.extend(other.last.iter().copied());
        self.bot |= other.bot;
        (self.last.len(), self.bot) != before
    }
}

/// Computes the syscall-flow automaton of `module`, rooted at `main`.
///
/// `sensitive` is the alphabet: only these nrs appear in the result.
/// Run this on the **pre-instrumentation** module — the BASTION pass
/// only inserts straight-line intrinsics, so call structure (and thus
/// flow) is identical either way, but the pre-pass module is smaller.
pub fn analyze(module: &Module, cg: &CallGraph, sensitive: &BTreeSet<u32>) -> SyscallFlow {
    let nfuncs = module.functions.len();
    let mut summaries: Vec<FlowSummary> = vec![FlowSummary::default(); nfuncs];
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();

    // Syscall stubs have a fixed summary; everything else starts at
    // bottom (∅/∅/eps=false) so recursion converges to the least
    // fixpoint from below.
    for (fid, f) in module.iter_funcs() {
        match f.kind {
            FuncKind::SyscallStub(nr) if sensitive.contains(&nr) => {
                let s = &mut summaries[fid.index()];
                s.first.insert(nr);
                s.last.insert(nr);
                s.eps = false;
            }
            FuncKind::SyscallStub(_) => summaries[fid.index()].eps = true,
            FuncKind::Normal => {}
        }
    }

    // The event emitted by calling `callee`: the union of possible
    // target summaries for indirect calls (every address-taken
    // function), the target's summary for direct calls.
    let callee_event = |summaries: &[FlowSummary], callee: &Callee| -> FlowSummary {
        match callee {
            Callee::Direct(t) => summaries[t.index()].clone(),
            Callee::Indirect(_) => {
                let mut ev = FlowSummary::default();
                for &t in &cg.address_taken {
                    let s = &summaries[t.index()];
                    ev.first.extend(s.first.iter().copied());
                    ev.last.extend(s.last.iter().copied());
                    ev.eps |= s.eps;
                }
                if cg.address_taken.is_empty() {
                    ev.eps = true;
                }
                ev
            }
        }
    };

    // Module-level fixpoint: recompute every defined function's summary
    // (and the global edge set) until nothing changes. Monotone in both,
    // so termination is bounded by |sensitive|² + |funcs|·|sensitive|.
    loop {
        let mut changed = false;
        for (fid, f) in module.iter_funcs() {
            if f.kind != FuncKind::Normal {
                continue;
            }
            if f.blocks.is_empty() {
                // Declared-only function: treat as emitting nothing.
                if !summaries[fid.index()].eps {
                    summaries[fid.index()].eps = true;
                    changed = true;
                }
                continue;
            }
            let mut new = FlowSummary {
                first: summaries[fid.index()].first.clone(),
                last: BTreeSet::new(),
                eps: false,
            };
            // Per-block dataflow over the CFG, iterated locally to a
            // fixpoint (loops feed block entry states back around).
            let mut states: Vec<Option<BlockState>> = vec![None; f.blocks.len()];
            states[0] = Some(BlockState::entry());
            let mut exit: Option<BlockState> = None;
            loop {
                let mut local_changed = false;
                for (bid, b) in f.iter_blocks() {
                    let Some(mut st) = states[bid.index()].clone() else {
                        continue;
                    };
                    for inst in &b.insts {
                        let ev = match inst {
                            Inst::Call { callee, .. } => callee_event(&summaries, callee),
                            _ => continue,
                        };
                        if ev.first.is_empty() && ev.last.is_empty() {
                            // Pure-eps event: no emission possible.
                            continue;
                        }
                        for &nf in &ev.first {
                            if st.bot && new.first.insert(nf) {
                                changed = true;
                            }
                            for &l in &st.last {
                                if edges.insert((l, nf)) {
                                    changed = true;
                                }
                            }
                        }
                        if ev.eps {
                            st.last.extend(ev.last.iter().copied());
                        } else {
                            st.last = ev.last.clone();
                            st.bot = false;
                        }
                    }
                    match &b.term {
                        Terminator::Ret(_) => match &mut exit {
                            Some(e) => local_changed |= e.join(&st),
                            None => {
                                exit = Some(st.clone());
                                local_changed = true;
                            }
                        },
                        t => {
                            for succ in t.successors() {
                                match &mut states[succ.index()] {
                                    Some(e) => local_changed |= e.join(&st),
                                    slot @ None => {
                                        *slot = Some(st.clone());
                                        local_changed = true;
                                    }
                                }
                            }
                        }
                    }
                }
                if !local_changed {
                    break;
                }
            }
            if let Some(exit) = exit {
                new.last = exit.last;
                new.eps = exit.bot;
            }
            if summaries[fid.index()] != new {
                summaries[fid.index()] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let initial = module
        .func_by_name("main")
        .map(|m| summaries[m.index()].first.clone())
        .unwrap_or_default();
    SyscallFlow { initial, edges }
}

/// Convenience: analyze with a fresh call graph.
pub fn analyze_module(module: &Module, sensitive: &BTreeSet<u32>) -> SyscallFlow {
    analyze(module, &CallGraph::build(module), sensitive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{sysno, Operand, Ty};

    fn sensitive() -> BTreeSet<u32> {
        sysno::sensitive_set()
    }

    /// main calls mmap then execve: initial = {mmap}, one edge.
    #[test]
    fn straight_line_sequence() {
        let mut mb = ModuleBuilder::new("t");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let _ = f.call_direct(mmap, &[0i64.into(); 6]);
        let _ = f.call_direct(execve, &[0i64.into(); 3]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let flow = analyze_module(&mb.finish(), &sensitive());
        assert_eq!(flow.initial, BTreeSet::from([sysno::MMAP]));
        assert_eq!(flow.edges, BTreeSet::from([(sysno::MMAP, sysno::EXECVE)]));
    }

    /// A branch makes both orders' first-traps initial, but only taken
    /// orders become edges.
    #[test]
    fn branches_union_but_preserve_order() {
        let mut mb = ModuleBuilder::new("t");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let mut f = mb.function("main", &[("c", Ty::I64)], Ty::I64);
        let then_b = f.new_block();
        let else_b = f.new_block();
        let done = f.new_block();
        let ca = f.frame_addr(f.param_slot(0));
        let cv = f.load(ca);
        f.br(cv, then_b, else_b);
        f.switch_to(then_b);
        let _ = f.call_direct(mmap, &[0i64.into(); 6]);
        f.jmp(done);
        f.switch_to(else_b);
        let _ = f.call_direct(execve, &[0i64.into(); 3]);
        f.jmp(done);
        f.switch_to(done);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let flow = analyze_module(&mb.finish(), &sensitive());
        assert_eq!(flow.initial, BTreeSet::from([sysno::MMAP, sysno::EXECVE]));
        // The branches never chain mmap→execve or back.
        assert!(flow.edges.is_empty());
    }

    /// A loop re-entering the same call produces a self-edge.
    #[test]
    fn loops_produce_self_edges() {
        let mut mb = ModuleBuilder::new("t");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let mut f = mb.function("main", &[("n", Ty::I64)], Ty::I64);
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.jmp(head);
        f.switch_to(head);
        let na = f.frame_addr(f.param_slot(0));
        let nv = f.load(na);
        f.br(nv, body, done);
        f.switch_to(body);
        let _ = f.call_direct(mmap, &[0i64.into(); 6]);
        f.jmp(head);
        f.switch_to(done);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let flow = analyze_module(&mb.finish(), &sensitive());
        assert_eq!(flow.initial, BTreeSet::from([sysno::MMAP]));
        assert!(flow.edges.contains(&(sysno::MMAP, sysno::MMAP)));
    }

    /// Flow threads through helper functions via their summaries.
    #[test]
    fn interprocedural_sequencing() {
        let mut mb = ModuleBuilder::new("t");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let helper = mb.declare("helper", &[], Ty::Void);
        {
            let mut f = mb.define(helper);
            let _ = f.call_direct(mmap, &[0i64.into(); 6]);
            f.ret(None);
            f.finish();
        }
        let mut f = mb.function("main", &[], Ty::I64);
        let _ = f.call_direct(helper, &[]);
        let _ = f.call_direct(execve, &[0i64.into(); 3]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let flow = analyze_module(&mb.finish(), &sensitive());
        assert_eq!(flow.initial, BTreeSet::from([sysno::MMAP]));
        assert_eq!(flow.edges, BTreeSet::from([(sysno::MMAP, sysno::EXECVE)]));
    }

    /// Non-sensitive stubs are invisible to the automaton: they neither
    /// start sequences nor break adjacency.
    #[test]
    fn non_sensitive_traps_are_transparent() {
        let mut mb = ModuleBuilder::new("t");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let getpid = mb.declare_syscall_stub("getpid", sysno::GETPID, 0);
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let _ = f.call_direct(getpid, &[]);
        let _ = f.call_direct(mmap, &[0i64.into(); 6]);
        let _ = f.call_direct(getpid, &[]);
        let _ = f.call_direct(execve, &[0i64.into(); 3]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let flow = analyze_module(&mb.finish(), &sensitive());
        assert_eq!(flow.initial, BTreeSet::from([sysno::MMAP]));
        assert_eq!(flow.edges, BTreeSet::from([(sysno::MMAP, sysno::EXECVE)]));
    }

    /// Indirect calls fan out to every address-taken function.
    #[test]
    fn indirect_calls_union_address_taken_targets() {
        let mut mb = ModuleBuilder::new("t");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let handler = mb.declare("handler", &[], Ty::Void);
        {
            let mut f = mb.define(handler);
            let _ = f.call_direct(mmap, &[0i64.into(); 6]);
            f.ret(None);
            f.finish();
        }
        let mut f = mb.function("main", &[], Ty::I64);
        let fp = f.func_addr(handler);
        let _ = f.call_indirect(fp, &[]);
        let _ = f.call_indirect(fp, &[]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let flow = analyze_module(&mb.finish(), &sensitive());
        assert_eq!(flow.initial, BTreeSet::from([sysno::MMAP]));
        assert!(flow.edges.contains(&(sysno::MMAP, sysno::MMAP)));
    }

    /// Recursion converges (least fixpoint from bottom).
    #[test]
    fn recursion_terminates_and_is_sound() {
        let mut mb = ModuleBuilder::new("t");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let rec = mb.declare("rec", &[("n", Ty::I64)], Ty::Void);
        {
            let mut f = mb.define(rec);
            let stop = f.new_block();
            let go = f.new_block();
            let na = f.frame_addr(f.param_slot(0));
            let nv = f.load(na);
            f.br(nv, go, stop);
            f.switch_to(go);
            let _ = f.call_direct(mmap, &[0i64.into(); 6]);
            let _ = f.call_direct(rec, &[0i64.into()]);
            f.ret(None);
            f.switch_to(stop);
            f.ret(None);
            f.finish();
        }
        let mut f = mb.function("main", &[], Ty::I64);
        let _ = f.call_direct(rec, &[3i64.into()]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let flow = analyze_module(&mb.finish(), &sensitive());
        assert_eq!(flow.initial, BTreeSet::from([sysno::MMAP]));
        assert!(flow.edges.contains(&(sysno::MMAP, sysno::MMAP)));
    }

    /// Modules without main produce the empty automaton.
    #[test]
    fn no_main_is_empty() {
        let mut mb = ModuleBuilder::new("t");
        let _ = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let flow = analyze_module(&mb.finish(), &sensitive());
        assert!(flow.is_empty());
    }

    #[test]
    fn serializes_roundtrip() {
        let flow = SyscallFlow {
            initial: BTreeSet::from([1, 2]),
            edges: BTreeSet::from([(1, 2), (2, 2)]),
        };
        let json = serde_json::to_string(&flow).unwrap();
        let back: SyscallFlow = serde_json::from_str(&json).unwrap();
        assert_eq!(flow, back);
    }
}
