//! Type-signature equivalence classes for the coarse LLVM-CFI baseline.
//!
//! Clang's `-fsanitize=cfi-icall` permits an indirect call when the target
//! is an address-taken function whose *type signature* matches the callsite.
//! In our word-oriented IR the signature reduces to the arity, which is
//! exactly why the baseline is coarse: NGINX-sized programs put many
//! unrelated functions (and, in the CsCFI/AOCR attacks, even libc syscall
//! wrappers) into the same equivalence class, letting same-signature
//! hijacks through — the behaviour the paper's §10 exploits rely on.

use crate::callgraph::CallGraph;
use bastion_ir::{FuncId, Module};
use std::collections::{BTreeMap, BTreeSet};

/// Equivalence classes of indirect-call targets, keyed by arity.
#[derive(Debug, Clone)]
pub struct TypeSigReport {
    /// arity → address-taken functions with that arity.
    pub classes: BTreeMap<u8, BTreeSet<FuncId>>,
}

impl TypeSigReport {
    /// Builds the classes for `module`.
    pub fn build(module: &Module, cg: &CallGraph) -> Self {
        let mut classes: BTreeMap<u8, BTreeSet<FuncId>> = BTreeMap::new();
        for &f in &cg.address_taken {
            let arity = module.func(f).params.len() as u8;
            classes.entry(arity).or_default().insert(f);
        }
        TypeSigReport { classes }
    }

    /// Whether LLVM CFI would allow an indirect call with `argc` arguments
    /// to land on `target`.
    pub fn allows(&self, argc: usize, target: FuncId) -> bool {
        self.classes
            .get(&(argc as u8))
            .is_some_and(|s| s.contains(&target))
    }

    /// Size of the equivalence class for a given arity.
    pub fn class_size(&self, argc: usize) -> usize {
        self.classes.get(&(argc as u8)).map_or(0, BTreeSet::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{Operand, Ty};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("ts");
        let f1 = mb.declare("one_arg_a", &[("x", Ty::I64)], Ty::I64);
        let f2 = mb.declare("one_arg_b", &[("x", Ty::I64)], Ty::I64);
        let f3 = mb.declare("two_args", &[("x", Ty::I64), ("y", Ty::I64)], Ty::I64);
        let f4 = mb.declare("not_taken", &[("x", Ty::I64)], Ty::I64);
        for id in [f1, f2, f3, f4] {
            let mut f = mb.define(id);
            f.ret(Some(Operand::Imm(0)));
            f.finish();
        }
        let mut f = mb.function("main", &[], Ty::I64);
        for id in [f1, f2, f3] {
            let _ = f.func_addr(id);
        }
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn classes_group_by_arity() {
        let m = sample();
        let cg = CallGraph::build(&m);
        let ts = TypeSigReport::build(&m, &cg);
        assert_eq!(ts.class_size(1), 2);
        assert_eq!(ts.class_size(2), 1);
        assert_eq!(ts.class_size(0), 0);
    }

    #[test]
    fn same_class_targets_are_interchangeable() {
        // The coarse-CFI weakness: both one-arg functions are allowed at a
        // one-arg indirect callsite.
        let m = sample();
        let cg = CallGraph::build(&m);
        let ts = TypeSigReport::build(&m, &cg);
        let a = m.func_by_name("one_arg_a").unwrap();
        let b = m.func_by_name("one_arg_b").unwrap();
        assert!(ts.allows(1, a));
        assert!(ts.allows(1, b));
        assert!(!ts.allows(2, a));
    }

    #[test]
    fn non_address_taken_targets_are_rejected() {
        let m = sample();
        let cg = CallGraph::build(&m);
        let ts = TypeSigReport::build(&m, &cg);
        let nt = m.func_by_name("not_taken").unwrap();
        assert!(!ts.allows(1, nt));
    }
}
