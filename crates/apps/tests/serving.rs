//! End-to-end: each application boots in a world and serves its workload
//! through the corresponding load generator.

use bastion_apps::{loadgen, App};
use bastion_ir::sysno;
use bastion_kernel::World;
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

fn boot(app: App) -> World {
    let module = app.module().unwrap();
    let image = Arc::new(Image::load(module).unwrap());
    let machine = Machine::new(image, CostModel::default());
    let mut world = World::new(CostModel::default());
    app.setup_vfs(&mut world);
    world.spawn(machine);
    // Let the server initialize (returns Idle once all workers block).
    world.run(200_000_000);
    world
}

#[test]
fn webserve_serves_pages() {
    let mut world = boot(App::Webserve);
    // Master + 32 workers alive.
    assert_eq!(world.alive_count(), 33);
    let stats = loadgen::http_load(&mut world, App::Webserve.port(), 8, 50);
    assert_eq!(stats.requests, 50);
    // Each response carries the full page plus headers.
    assert!(stats.bytes >= 50 * bastion_apps::webserve::PAGE_BYTES as u64);
    assert!(stats.cycles > 0);
    // Keep-alive: accept4 fires per connection, far below the request
    // count (Table 4's accept4 5,665 vs ~340k requests relationship).
    let accepts = world.kernel.count_of(sysno::ACCEPT4);
    assert!(accepts >= 33, "accepts {accepts}"); // 32 parked workers + live conns
    assert!(accepts < 33 + 50, "accepts {accepts}");
    // Init-phase sensitive syscalls fired: clone, mmap, mprotect, setuid.
    assert_eq!(world.kernel.count_of(sysno::CLONE), 32);
    assert!(world.kernel.count_of(sysno::MMAP) > 500);
    assert!(world.kernel.count_of(sysno::MPROTECT) > 300);
    assert_eq!(world.kernel.count_of(sysno::SETUID), 32);
    assert_eq!(world.kernel.count_of(sysno::SOCKET), 33);
}

#[test]
fn webserve_upgrade_path_reaches_execve() {
    let mut world = boot(App::Webserve);
    let c = world.net_connect(App::Webserve.port()).unwrap();
    world.net_send(c, b"GET /upgrade HTTP/1.0\r\n\r\n");
    world.run(50_000_000);
    assert_eq!(world.kernel.count_of(sysno::EXECVE), 1);
    assert_eq!(world.kernel.exec_log.len(), 1);
    assert!(world.kernel.exec_log[0].1.contains("webserve-new"));
}

#[test]
fn dbkv_commits_transactions() {
    let mut world = boot(App::Dbkv);
    assert_eq!(world.alive_count(), 9); // master + 8 workers
    let stats = loadgen::tpcc_load(&mut world, App::Dbkv.port(), 2, 400);
    assert_eq!(stats.transactions, 400);
    assert!(stats.notpm(2_000_000_000) > 0.0);
    // SQLite shape: mprotect-heavy relative to mmap.
    assert!(world.kernel.count_of(sysno::MPROTECT) > world.kernel.count_of(sysno::MMAP));
    // The WAL grew.
    let wal = world.kernel.vfs.file(bastion_apps::dbkv::WAL_PATH).unwrap();
    assert!(wal.data.starts_with(b"TX "));
    assert!(wal.data.iter().filter(|&&b| b == b'\n').count() >= 400);
}

#[test]
fn ftpd_streams_downloads() {
    let mut world = boot(App::Ftpd);
    let stats = loadgen::ftp_load(
        &mut world,
        App::Ftpd.port(),
        3,
        bastion_apps::ftpd::FILE_PATH,
    );
    assert_eq!(stats.files, 3);
    assert_eq!(stats.bytes, 3 * bastion_apps::ftpd::FILE_BYTES as u64);
    // Per-transfer passive sockets: socket/bind/listen/accept move together.
    assert_eq!(world.kernel.count_of(sysno::SOCKET), 1 + 3);
    assert_eq!(world.kernel.count_of(sysno::BIND), 1 + 3);
    assert_eq!(world.kernel.count_of(sysno::LISTEN), 1 + 3);
    // 3 control + 3 data accepts, plus the final accept parked waiting for
    // a fourth session (invocations are counted at entry, like strace).
    assert_eq!(world.kernel.count_of(sysno::ACCEPT), 3 + 3 + 1);
    // Per-session privilege drops.
    assert_eq!(world.kernel.count_of(sysno::SETUID), 3);
    let secs = stats.seconds_for(100_000_000, 2_000_000_000);
    assert!(secs.is_finite() && secs > 0.0);
}
