//! Workload generators — the `wrk`, `DBT2`, and `dkftpbench` analogues.
//!
//! Each driver pumps the world scheduler and plays the client side of the
//! corresponding protocol through the external-connection API, measuring
//! *virtual* time (deterministic) for the Figure 3 / Table 3 metrics.

use bastion_kernel::{RunStatus, World};
use bastion_obs as obs;

/// Quantile-sketch lane for end-to-end request latency in virtual cycles:
/// HTTP per request, TPC-C per transaction, FTP per session. Observed only
/// when thread-local telemetry is enabled — the generators stay
/// zero-overhead on plain benchmark runs.
pub const REQUEST_CYCLES_SKETCH: &str = "loadgen.request_cycles";

/// Scheduler slice between client pumps.
const SLICE: u64 = 400_000;

/// Progress guard: pump iterations without progress before giving up.
const STALL_LIMIT: u32 = 10_000;

/// wrk-style HTTP load results.
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpStats {
    /// Completed requests.
    pub requests: u64,
    /// Response bytes received (headers + body).
    pub bytes: u64,
    /// Virtual cycles elapsed during the measurement.
    pub cycles: u64,
}

impl HttpStats {
    /// Throughput in MB/s of virtual time (Table 3's NGINX metric).
    pub fn throughput_mb_s(&self, cpu_hz: u64) -> f64 {
        let secs = self.cycles as f64 / cpu_hz as f64;
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1_000_000.0 / secs
        }
    }
}

/// Requests served per keep-alive connection before the client reconnects
/// (wrk reuses connections, which is why Table 4's accept4 count is far
/// below the request count).
pub const KEEPALIVE_REQUESTS: u64 = 29;

struct HttpConn {
    id: bastion_kernel::ExtConnId,
    buf: Vec<u8>,
    /// Requests this connection may still send.
    remaining: u64,
    /// A request is in flight awaiting its response.
    outstanding: bool,
    /// Virtual time the in-flight request was sent (latency sketch lane).
    sent_at: u64,
}

/// Drives `total` HTTP requests against `port` with `concurrency`
/// keep-alive connections of [`KEEPALIVE_REQUESTS`] requests each.
/// Responses are framed by their `Content-Length` header.
///
/// # Panics
/// Panics if the server stops making progress (deadlock guard).
pub fn http_load(world: &mut World, port: u16, concurrency: usize, total: u64) -> HttpStats {
    let request: &[u8] = b"GET /index.html HTTP/1.1\r\nHost: bench\r\n\r\n";
    let start = world.now();
    let mut stats = HttpStats::default();
    let mut conns: Vec<HttpConn> = Vec::new();
    let mut issued = 0u64;
    let mut stall = 0u32;

    // Deterministic connection plan: every run of a given (total,
    // concurrency) opens exactly the same connections with the same
    // request quotas, so protected and baseline runs see identical
    // workloads (conn-count jitter would otherwise mask sub-0.1%
    // per-context overhead deltas).
    let mut plan: Vec<u64> = Vec::new();
    let mut left = total;
    while left > 0 {
        let q = KEEPALIVE_REQUESTS.min(left);
        plan.push(q);
        left -= q;
    }
    let mut next_conn = 0usize;

    while stats.requests < total {
        // Keep the pipe full: one outstanding request per connection.
        while conns.len() < concurrency && next_conn < plan.len() {
            let Some(id) = world.net_connect(port) else {
                break; // backlog full; let the server drain
            };
            let quota = plan[next_conn];
            next_conn += 1;
            world.net_send(id, request);
            issued += 1;
            conns.push(HttpConn {
                id,
                buf: Vec::new(),
                remaining: quota - 1,
                outstanding: true,
                sent_at: world.now(),
            });
        }
        let status = world.run(SLICE);
        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            let chunk = world.net_recv(conns[i].id);
            if !chunk.is_empty() {
                conns[i].buf.extend_from_slice(&chunk);
                progressed = true;
            }
            // Consume the response if complete, then pipeline the next
            // request on the same connection.
            while let Some(len) = complete_response(&conns[i].buf) {
                conns[i].buf.drain(..len);
                conns[i].outstanding = false;
                obs::sketch_observe(
                    REQUEST_CYCLES_SKETCH,
                    world.now().saturating_sub(conns[i].sent_at),
                );
                stats.requests += 1;
                stats.bytes += len as u64;
                progressed = true;
                if conns[i].remaining > 0 && issued < total {
                    world.net_send(conns[i].id, request);
                    conns[i].remaining -= 1;
                    conns[i].outstanding = true;
                    conns[i].sent_at = world.now();
                    issued += 1;
                }
            }
            let exhausted = !conns[i].outstanding && (conns[i].remaining == 0 || issued >= total);
            if exhausted || world.net_server_closed(conns[i].id) {
                world.net_close(conns[i].id);
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if progressed || status == RunStatus::Budget {
            stall = 0;
        } else {
            stall += 1;
            assert!(
                stall < STALL_LIMIT,
                "http_load stalled: {}/{total} done ({} issued), {} conns, status {status:?}\n{}",
                stats.requests,
                issued,
                conns.len(),
                world.summary()
            );
        }
    }
    // Drain: close any remaining connections and run the world until all
    // workers have re-parked in accept4. This makes every measurement
    // cover the identical logical workload (including per-connection
    // close + re-accept costs), so per-context overhead deltas are not
    // masked by window-boundary jitter.
    for c in conns.drain(..) {
        world.net_close(c.id);
    }
    for _ in 0..STALL_LIMIT {
        match world.run(SLICE) {
            RunStatus::Idle | RunStatus::AllExited => break,
            RunStatus::Budget => {}
        }
    }
    stats.cycles = world.now() - start;
    stats
}

/// If `buf` starts with a complete HTTP response (headers + body per
/// `Content-Length`), returns its total length. Shared with the stepped
/// [`crate::traffic`] drivers so both frame responses identically.
pub(crate) fn complete_response(buf: &[u8]) -> Option<usize> {
    let hdr_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let headers = &buf[..hdr_end];
    let text = std::str::from_utf8(headers).ok()?;
    let mut body_len = 0usize;
    for line in text.split("\r\n") {
        if let Some(v) = line.strip_prefix("Content-Length: ") {
            body_len = v.trim().parse().ok()?;
        }
    }
    (buf.len() >= hdr_end + body_len).then_some(hdr_end + body_len)
}

/// DBT2-style transaction results.
#[derive(Debug, Clone, Copy, Default)]
pub struct TpccStats {
    /// Committed new-order transactions.
    pub transactions: u64,
    /// Virtual cycles elapsed.
    pub cycles: u64,
}

impl TpccStats {
    /// New-order transactions per virtual minute (Table 3's SQLite metric).
    pub fn notpm(&self, cpu_hz: u64) -> f64 {
        let mins = self.cycles as f64 / cpu_hz as f64 / 60.0;
        if mins == 0.0 {
            0.0
        } else {
            self.transactions as f64 / mins
        }
    }
}

/// Runs `total` NEWORDER transactions over `sessions` concurrent client
/// sessions against the dbkv server.
///
/// # Panics
/// Panics on a server stall.
pub fn tpcc_load(world: &mut World, port: u16, sessions: usize, total: u64) -> TpccStats {
    let start = world.now();
    let mut stats = TpccStats::default();
    let mut conns: Vec<(bastion_kernel::ExtConnId, u64, u64)> = Vec::new();
    // Open sessions up front (long-lived, like DBT2 terminals).
    for _ in 0..sessions {
        if let Some(c) = world.net_connect(port) {
            conns.push((c, 0, 0));
        }
    }
    assert!(!conns.is_empty(), "dbkv server not listening");
    let mut issued = 0u64;
    // Seed one transaction per session.
    let seeded_at = world.now();
    for (i, (c, _, sent_at)) in conns.iter_mut().enumerate() {
        world.net_send(*c, order_cmd(issued + i as u64).as_bytes());
        *sent_at = seeded_at;
    }
    issued += conns.len() as u64;
    let mut stall = 0u32;

    while stats.transactions < total {
        let status = world.run(SLICE);
        let mut progressed = false;
        let now = world.now();
        for (c, buffered, sent_at) in &mut conns {
            let chunk = world.net_recv(*c);
            if chunk.is_empty() {
                continue;
            }
            progressed = true;
            *buffered += chunk.iter().filter(|&&b| b == b'\n').count() as u64;
            while *buffered > 0 && stats.transactions < total {
                *buffered -= 1;
                obs::sketch_observe(REQUEST_CYCLES_SKETCH, now.saturating_sub(*sent_at));
                stats.transactions += 1;
                if issued < total {
                    world.net_send(*c, order_cmd(issued).as_bytes());
                    *sent_at = now;
                    issued += 1;
                }
            }
        }
        if progressed || status == RunStatus::Budget {
            stall = 0;
        } else {
            stall += 1;
            assert!(
                stall < STALL_LIMIT,
                "tpcc_load stalled: {}/{total} done, status {status:?}\n{}",
                stats.transactions,
                world.summary()
            );
        }
    }
    stats.cycles = world.now() - start;
    stats
}

pub(crate) fn order_cmd(seq: u64) -> String {
    format!(
        "NEWORDER {} {} {}\n",
        1 + seq % 4,
        seq * 7 % 251,
        1 + seq % 9
    )
}

/// dkftpbench-style download results.
#[derive(Debug, Clone, Copy, Default)]
pub struct FtpStats {
    /// Files downloaded.
    pub files: u64,
    /// Payload bytes received on data connections.
    pub bytes: u64,
    /// Virtual cycles elapsed.
    pub cycles: u64,
}

impl FtpStats {
    /// Virtual seconds to download `target_bytes` at the measured rate —
    /// the Table 3 vsftpd metric ("seconds to download a 100 MB file"),
    /// scaled from the simulator's smaller payload.
    pub fn seconds_for(&self, target_bytes: u64, cpu_hz: u64) -> f64 {
        if self.bytes == 0 {
            return f64::INFINITY;
        }
        let secs = self.cycles as f64 / cpu_hz as f64;
        secs * target_bytes as f64 / self.bytes as f64
    }
}

/// Runs `downloads` sequential RETR sessions (one file each) against the
/// ftpd server, like dkftpbench "launching clients one after another".
///
/// # Panics
/// Panics on a server stall.
pub fn ftp_load(world: &mut World, port: u16, downloads: u64, path: &str) -> FtpStats {
    let start = world.now();
    let mut stats = FtpStats::default();
    for session in 0..downloads {
        let session_start = world.now();
        let ctrl = loop {
            match world.net_connect(port) {
                Some(c) => break c,
                None => {
                    world.run(SLICE);
                }
            }
        };
        expect_reply(world, ctrl, b"220", session);
        world.net_send(ctrl, b"USER bench\n");
        expect_reply(world, ctrl, b"331", session);
        world.net_send(ctrl, b"PASS bench\n");
        expect_reply(world, ctrl, b"230", session);
        world.net_send(ctrl, format!("RETR {path}\n").as_bytes());
        // Server announces the passive port: "227 <port>\n".
        let pasv = expect_reply(world, ctrl, b"227", session);
        let port_num: u16 = String::from_utf8_lossy(&pasv[4..])
            .trim()
            .parse()
            .expect("pasv port");
        // Connect the data channel so the server's accept completes.
        let data = loop {
            match world.net_connect(port_num) {
                Some(c) => break c,
                None => {
                    world.run(SLICE);
                }
            }
        };
        // Drain data until the control channel reports 226.
        let mut ctrl_buf = Vec::new();
        let mut stall = 0u32;
        loop {
            world.run(SLICE);
            let chunk = world.net_recv(data);
            if !chunk.is_empty() {
                stats.bytes += chunk.len() as u64;
                stall = 0;
            }
            ctrl_buf.extend(world.net_recv(ctrl));
            if ctrl_buf.windows(3).any(|w| w == b"226") {
                break;
            }
            stall += 1;
            assert!(
                stall < STALL_LIMIT,
                "ftp_load stalled mid-transfer: {} files, {} bytes\n{}",
                stats.files,
                stats.bytes,
                world.summary()
            );
        }
        // Drain any trailing data bytes.
        let tail = world.net_recv(data);
        stats.bytes += tail.len() as u64;
        stats.files += 1;
        obs::sketch_observe(
            REQUEST_CYCLES_SKETCH,
            world.now().saturating_sub(session_start),
        );
        world.net_send(ctrl, b"QUIT\n");
        world.run(SLICE);
        let _ = world.net_recv(ctrl);
        world.net_close(data);
        world.net_close(ctrl);
        world.run(SLICE);
    }
    stats.cycles = world.now() - start;
    stats
}

/// Waits for a control-channel reply starting with `code`; returns the
/// full reply bytes.
fn expect_reply(
    world: &mut World,
    ctrl: bastion_kernel::ExtConnId,
    code: &[u8],
    session: u64,
) -> Vec<u8> {
    let mut buf = Vec::new();
    for _ in 0..STALL_LIMIT {
        world.run(SLICE);
        buf.extend(world.net_recv(ctrl));
        if buf.len() >= code.len() && buf.contains(&b'\n') {
            // Find the line with the code.
            for line in buf.split(|&b| b == b'\n') {
                if line.starts_with(code) {
                    return line.to_vec();
                }
            }
        }
    }
    panic!(
        "ftp session {session}: no `{}` reply (got {:?})",
        String::from_utf8_lossy(code),
        String::from_utf8_lossy(&buf)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_response_framing() {
        let resp = b"HTTP/1.0 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(complete_response(resp), Some(resp.len()));
        // Incomplete body.
        assert_eq!(complete_response(&resp[..resp.len() - 1]), None);
        // Incomplete headers.
        assert_eq!(complete_response(b"HTTP/1.0 200 OK\r\nContent-"), None);
        // Zero-length body (404s).
        let err = b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(complete_response(err), Some(err.len()));
        // Pipelined responses: only the first is consumed.
        let mut two = resp.to_vec();
        two.extend_from_slice(err);
        assert_eq!(complete_response(&two), Some(resp.len()));
    }

    #[test]
    fn metrics_convert_units() {
        let h = HttpStats {
            requests: 10,
            bytes: 2_000_000,
            cycles: 2_000_000_000,
        };
        assert!((h.throughput_mb_s(2_000_000_000) - 2.0).abs() < 1e-9);
        let t = TpccStats {
            transactions: 600,
            cycles: 2_000_000_000 * 60,
        };
        assert!((t.notpm(2_000_000_000) - 600.0).abs() < 1e-9);
        let f = FtpStats {
            files: 1,
            bytes: 1_000_000,
            cycles: 2_000_000_000,
        };
        // 100x the bytes at the same rate = 100x the time.
        assert!((f.seconds_for(100_000_000, 2_000_000_000) - 100.0).abs() < 1e-9);
        let empty = FtpStats::default();
        assert!(empty.seconds_for(1, 1).is_infinite());
    }

    #[test]
    fn order_commands_are_well_formed() {
        for i in 0..50 {
            let c = order_cmd(i);
            assert!(c.starts_with("NEWORDER "));
            assert!(c.ends_with('\n'));
            assert_eq!(c.split_whitespace().count(), 4);
        }
    }
}
