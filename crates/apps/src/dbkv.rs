//! `dbkv` — the SQLite analogue: a transactional key-value / order engine
//! driven by a DBT2-style new-order workload.
//!
//! SQLite-relevant structure (Table 4's SQLite column):
//!
//! * worker threads created with `clone` at startup (paper: 48);
//! * a page-cache region whose pages are `mprotect`-toggled around
//!   transaction commits (SQLite's dominant sensitive syscall: 501
//!   mprotect vs 42 mmap);
//! * a write-ahead log appended through `write` on every commit;
//! * a single listener (`socket`/`bind`/`listen` once each, paper: 1/1/1)
//!   accepting DBT2 client connections with plain `accept` (paper: 11).
//!
//! Protocol (text): `NEWORDER <warehouse> <item> <qty>\n` → `OK <total>\n`;
//! `STOCK <item>\n` → `S <level>\n`; `QUIT\n` closes the session.

/// Listener port.
pub const PORT: u16 = 5432;

/// Worker count (threads in SQLite's case; paper clone count 48).
pub const WORKERS: u64 = 8;

/// WAL file path.
pub const WAL_PATH: &str = "/var/db/wal";

/// The MiniC source.
pub const SOURCE: &str = r#"
// ---- dbkv: a transactional order engine (SQLite/DBT2 analogue) ----

long stock[256];
long orders[256];
long order_count;
long page_cache;
long wal_fd;
long tx_since_protect;

// Pricing policies are dispatched through a code pointer per order line —
// the vtable-hop-heavy shape that makes real SQLite the most expensive
// application under LLVM CFI in Figure 3.
fnptr tax_fn;

long tax_standard(long amount) { return amount * 8 / 100; }
long tax_reduced(long amount) { return amount * 2 / 100; }

void db_init() {
    long i;
    tax_fn = tax_standard;
    if (order_count > 1000000) { tax_fn = tax_reduced; }
    for (i = 0; i < 256; i = i + 1) {
        stock[i] = 1000;
        orders[i] = 0;
    }
    order_count = 0;
    tx_since_protect = 0;
    // Page cache: SQLite maps only a couple of regions (Table 4: mmap is
    // rare for SQLite; mprotect dominates).
    page_cache = mmap(0, 262144, 3, 0x21, 0 - 1, 0);
    mmap(0, 65536, 3, 0x21, 0 - 1, 0);
    wal_fd = open("/var/db/wal", 0x41, 0600);
}

void wal_append(long warehouse, long item, long qty, long total) {
    char rec[96];
    char num[24];
    strcpy(rec, "TX ");
    itoa(warehouse, num);  strcat(rec, num); strcat(rec, " ");
    itoa(item, num);       strcat(rec, num); strcat(rec, " ");
    itoa(qty, num);        strcat(rec, num); strcat(rec, " ");
    itoa(total, num);      strcat(rec, num); strcat(rec, "\n");
    write(wal_fd, rec, strlen(rec));
}

// Commit path: every few transactions the page cache is write-protected
// and re-opened, SQLite-style memory protection of clean pages.
void protect_cycle() {
    tx_since_protect = tx_since_protect + 1;
    if (tx_since_protect >= 96) {
        mprotect(page_cache, 4096, 1);
        mprotect(page_cache, 4096, 3);
        tx_since_protect = 0;
    }
}

// The CPU-bound share of a new-order transaction: per-line pricing,
// tax/discount arithmetic, and record checksumming (DBT2's transaction
// logic between syscalls).
long price_order(long warehouse, long item, long qty) {
    long total;
    long line;
    long unit;
    total = 0;
    for (line = 0; line < 24; line = line + 1) {
        unit = 10 + ((item + line * 17) & 63);
        long disc;
        disc = (warehouse + line) % 7;
        long amount;
        amount = qty * unit;
        amount = amount - amount * disc / 100;
        long tax;
        tax = tax_fn(amount);
        total = total + amount + tax;
        total = total ^ (total >> 9);
        total = total + stock[(item + line) & 255];
    }
    return total;
}

long new_order(long warehouse, long item, long qty) {
    long idx;
    long total;
    idx = item & 255;
    if (stock[idx] < qty) {
        stock[idx] = stock[idx] + 500; // restock
    }
    stock[idx] = stock[idx] - qty;
    orders[order_count & 255] = item * 1000 + qty;
    order_count = order_count + 1;
    total = price_order(warehouse, item, qty);
    wal_append(warehouse, item, qty, total);
    protect_cycle();
    return total;
}

long parse_num(char *s, long *pos) {
    long v;
    long i;
    i = *pos;
    while (s[i] == ' ') { i = i + 1; }
    v = 0;
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i = i + 1;
    }
    *pos = i;
    return v;
}

long handle_command(long conn, char *buf) {
    char out[64];
    char num[24];
    long pos;
    if (starts_with(buf, "NEWORDER ")) {
        long w;
        long item;
        long qty;
        long total;
        pos = 9;
        w = parse_num(buf, &pos);
        item = parse_num(buf, &pos);
        qty = parse_num(buf, &pos);
        total = new_order(w, item, qty);
        strcpy(out, "OK ");
        itoa(total, num);
        strcat(out, num);
        strcat(out, "\n");
        write(conn, out, strlen(out));
        return 1;
    }
    if (starts_with(buf, "STOCK ")) {
        long item;
        pos = 6;
        item = parse_num(buf, &pos);
        strcpy(out, "S ");
        itoa(stock[item & 255], num);
        strcat(out, num);
        strcat(out, "\n");
        write(conn, out, strlen(out));
        return 1;
    }
    if (starts_with(buf, "QUIT")) { return 0; }
    write(conn, "ERR\n", 4);
    return 1;
}

void session_loop(long conn) {
    char buf[128];
    long n;
    while (1) {
        n = read(conn, buf, 127);
        if (n <= 0) { return; }
        buf[n] = 0;
        if (!handle_command(conn, buf)) { return; }
    }
}

void worker_loop(long listener) {
    long conn;
    while (1) {
        conn = accept(listener, 0, 0);
        if (conn < 0) { continue; }
        session_loop(conn);
        close(conn);
    }
}

long main() {
    long listener;
    long sa[2];
    long i;
    long pid;
    long status;

    db_init();

    listener = socket(2, 1, 0);
    sa[0] = 2 | 5432 * 65536;
    bind(listener, sa, 16);
    listen(listener, 64);

    for (i = 0; i < 8; i = i + 1) {
        pid = clone(0, 0, 0, 0, 0);
        if (pid == 0) {
            worker_loop(listener);
            exit(0);
        }
    }
    while (1) {
        wait4(0 - 1, &status, 0, 0);
    }
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_compiles() {
        let m = bastion_minic::compile_program("dbkv", &[SOURCE]).unwrap();
        assert!(m.func_by_name("new_order").is_some());
        assert!(m.func_by_name("protect_cycle").is_some());
    }
}
