//! `ftpd` — the vsftpd analogue: an FTP server with per-transfer passive
//! data sockets, driven by a dkftpbench-style download workload.
//!
//! vsftpd-relevant structure (Table 4's vsFTPd column):
//!
//! * per-session privilege drop (`setuid`/`setgid`, paper: 12 each);
//! * a **new passive data socket per transfer** — `socket`, `bind`,
//!   `listen`, `accept` each fire once per `RETR`, which is why vsftpd's
//!   Table 4 column shows them in similar counts (85/77/77/87);
//! * file downloads stream through `open` + `read` + `write` chunks.
//!
//! Protocol (simplified FTP on one control connection):
//! `USER x` → `331`, `PASS y` → `230`, `PASV` → `227 <port>`,
//! `RETR <path>` → `150`, data streamed on the announced port, `226`;
//! `QUIT` → `221`.

/// Control-connection port.
pub const PORT: u16 = 21;

/// First passive data port.
pub const PASV_BASE: u16 = 10_000;

/// Path of the benchmark download file.
pub const FILE_PATH: &str = "/srv/ftp/payload.bin";

/// Size of the download file. The paper fetches 100 MB; the simulator
/// streams a scaled-down 16 MiB file and the harness scales the reported
/// seconds accordingly (DESIGN.md substitution table).
pub const FILE_BYTES: usize = 16 * 1024 * 1024;

/// The MiniC source.
pub const SOURCE: &str = r#"
// ---- ftpd: a passive-mode FTP server (vsftpd analogue) ----

long next_pasv_port;
long g_sessions;
long g_authed;

// Per-chunk transfer filter, dispatched through a code pointer (vsftpd's
// ASCII/binary-mode handlers).
fnptr xfer_filter;

long filter_binary(long n) { return n; }
long filter_ascii(long n) { return n; }

struct ftp_cmd { fnptr handler; };
struct ftp_cmd cmd_table[5];

void drop_privileges() {
    setgid(99);
    setuid(99);
}

long open_pasv_listener(long *port_out) {
    long fd;
    long sa[2];
    long port;
    port = next_pasv_port;
    next_pasv_port = next_pasv_port + 1;
    fd = socket(2, 1, 0);
    sa[0] = 2 | port * 65536;
    bind(fd, sa, 16);
    listen(fd, 4);
    *port_out = port;
    return fd;
}

void stream_file(long data_conn, char *path) {
    long fd;
    char chunk[32768];
    long n;
    fd = open(path, 0, 0);
    if (fd < 0) { return; }
    while (1) {
        n = read(fd, chunk, 32768);
        if (n <= 0) { break; }
        n = xfer_filter(n);
        write(data_conn, chunk, n);
    }
    close(fd);
}

void do_retr(long ctrl, char *path) {
    long pasv_fd;
    long data_conn;
    long port;
    char msg[64];
    char num[24];
    pasv_fd = open_pasv_listener(&port);
    strcpy(msg, "227 ");
    itoa(port, num);
    strcat(msg, num);
    strcat(msg, "\n");
    write(ctrl, msg, strlen(msg));
    data_conn = accept(pasv_fd, 0, 0);
    write(ctrl, "150 sending\n", 12);
    stream_file(data_conn, path);
    close(data_conn);
    close(pasv_fd);
    write(ctrl, "226 done\n", 9);
}

// Command handlers, dispatched through the cmd_table function-pointer
// array (vsftpd keeps similar command tables) — the corruptible indirect
// callsite the NEWTON CsCFI scenario targets.
long c_user(long ctrl, char *buf) {
    write(ctrl, "331 need password\n", 18);
    return 1;
}

long c_pass(long ctrl, char *buf) {
    g_authed = 1;
    write(ctrl, "230 logged in\n", 14);
    return 1;
}

long c_retr(long ctrl, char *buf) {
    char path[128];
    if (!g_authed) {
        write(ctrl, "530 not logged in\n", 18);
        return 1;
    }
    long i;
    i = 5;
    long j;
    j = 0;
    while (buf[i] != '\n' && buf[i] != '\r' && buf[i] != 0 && j < 120) {
        path[j] = buf[i];
        i = i + 1;
        j = j + 1;
    }
    path[j] = 0;
    do_retr(ctrl, path);
    return 1;
}

long c_quit(long ctrl, char *buf) {
    write(ctrl, "221 bye\n", 8);
    return 0;
}

long c_unknown(long ctrl, char *buf) {
    write(ctrl, "502 no\n", 7);
    return 1;
}

long classify(char *buf) {
    if (starts_with(buf, "USER ")) { return 0; }
    if (starts_with(buf, "PASS ")) { return 1; }
    if (starts_with(buf, "RETR ")) { return 2; }
    if (starts_with(buf, "QUIT")) { return 3; }
    return 4;
}

void session(long ctrl) {
    char buf[160];
    long n;
    long idx;
    g_authed = 0;
    g_sessions = g_sessions + 1;
    drop_privileges();
    write(ctrl, "220 ftpd ready\n", 15);
    while (1) {
        n = read(ctrl, buf, 159);
        if (n <= 0) { return; }
        buf[n] = 0;
        idx = classify(buf);
        if (!cmd_table[idx].handler(ctrl, buf)) { return; }
    }
}

long main() {
    long listener;
    long sa[2];
    long ctrl;

    next_pasv_port = 10000;
    g_sessions = 0;
    xfer_filter = filter_binary;
    if (g_sessions > 1000000) { xfer_filter = filter_ascii; }
    cmd_table[0].handler = c_user;
    cmd_table[1].handler = c_pass;
    cmd_table[2].handler = c_retr;
    cmd_table[3].handler = c_quit;
    cmd_table[4].handler = c_unknown;

    listener = socket(2, 1, 0);
    sa[0] = 2 | 21 * 65536;
    bind(listener, sa, 16);
    listen(listener, 16);

    while (1) {
        ctrl = accept(listener, 0, 0);
        if (ctrl < 0) { continue; }
        session(ctrl);
        close(ctrl);
    }
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_compiles() {
        let m = bastion_minic::compile_program("ftpd", &[SOURCE]).unwrap();
        assert!(m.func_by_name("do_retr").is_some());
        assert!(m.func_by_name("drop_privileges").is_some());
    }
}
