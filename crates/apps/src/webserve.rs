//! `webserve` — the NGINX analogue, written in MiniC.
//!
//! Mirrors the paper's NGINX-relevant structure:
//!
//! * master/worker architecture: the master `clone`s [`WORKERS`] workers
//!   after binding the listener, each worker dropping privileges
//!   (`setuid`/`setgid`), mapping its connection arena (`mmap` +
//!   `mprotect` guard pages) and opening one upstream connection
//!   (`socket` + `connect`) — reproducing the Table 4 initialization
//!   pattern where sensitive syscalls cluster at startup;
//! * a per-request `accept4` loop — the syscall that dominates Table 4;
//! * **Listing 1**: `ngx_execute_proc` invokes `execve(ctx->path, ...)`
//!   from a global `exec_ctx`, reached only from the admin `GET /upgrade`
//!   path; `ngx_output_chain` makes an argument-corruptible *indirect*
//!   call through `out_chain.output_filter`;
//! * **Listing 2**: `get_indexed_variable` dispatches through the
//!   `vh[index].get_handler` function-pointer array, index-corruptible
//!   past its bounds.

/// Number of worker processes the master clones (paper: 32).
pub const WORKERS: u64 = 32;

/// Listener port.
pub const PORT: u16 = 80;

/// Size of the static page served (paper: a 6,745-byte page).
pub const PAGE_BYTES: usize = 6745;

/// Path of the static page in the VFS.
pub const PAGE_PATH: &str = "/www/index.html";

/// Path of the upgrade binary (Listing 1's execve target).
pub const UPGRADE_PATH: &str = "/usr/sbin/webserve-new";

/// The MiniC source.
pub const SOURCE: &str = r#"
// ---- webserve: an NGINX-shaped static web server ----

struct exec_ctx { char *path; char *argv; char *envp; };
struct out_chain_s { fnptr output_filter; long filter_ctx; };
struct var_handler { fnptr get_handler; long data; };

char upgrade_path[64];
struct exec_ctx g_exec_ctx;
struct out_chain_s out_chain;
struct var_handler vh[5];
long g_arena;
long g_requests;

// Listing 1: the legitimate execve user. Only reachable from the admin
// upgrade request path.
void ngx_execute_proc() {
    execve(g_exec_ctx.path, 0, 0);
    exit(1);
}

// Handlers for indexed variables (Listing 2 analogue).
long h_host(long r, long data) { return r + data; }
long h_agent(long r, long data) { return r ^ data; }
long h_accept(long r, long data) { return r | data; }
long h_cookie(long r, long data) { return r & data; }

// Admin handler: triggers the runtime-upgrade path when invoked with the
// admin magic. Address-taken through the vh table, so execve is
// *indirectly reachable* through legitimate control flow — the property
// COOP and Control Jujutsu exploit (§10.3) — while execve itself is still
// only ever called directly (Table 5 row 5 stays zero).
long h_admin(long r, long data) {
    if (data == 7777) {
        ngx_execute_proc();
    }
    return 0;
}

// Listing 2: generic indexed-variable dispatch. `index` is attacker-
// reachable via header parsing; an out-of-bounds index redirects the
// indirect call.
long get_indexed_variable(long r, long index) {
    return vh[index].get_handler(r, vh[index].data);
}

// Listing 1's other half: the output filter indirect callsite.
long filter_plain(long ctx, long n) { return n; }

long ngx_output_chain(long n) {
    return out_chain.output_filter(out_chain.filter_ctx, n);
}

// Indexed-variable selector: honours an X-Index header when present.
// The value is used *unvalidated* as the vh[] index — the Listing 2
// out-of-bounds pattern the NEWTON CPI attack abuses.
long header_index(char *buf, long n, long dflt) {
    long i;
    for (i = 0; i + 9 < n; i = i + 1) {
        if (strneq(buf + i, "X-Index: ", 9)) {
            return atoi(buf + i + 9);
        }
    }
    return dflt;
}

long parse_request(char *buf, char *path_out) {
    long i;
    long j;
    if (!starts_with(buf, "GET ")) { return 0 - 1; }
    i = 4;
    j = 0;
    while (buf[i] != ' ' && buf[i] != 0 && j < 120) {
        path_out[j] = buf[i];
        i = i + 1;
        j = j + 1;
    }
    path_out[j] = 0;
    // Tally an indexed variable per request (header hashing stand-in).
    g_requests = g_requests + 1;
    return j;
}

void send_error(long conn, long code) {
    if (code == 404) {
        write(conn, "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n", 45);
    } else {
        write(conn, "HTTP/1.0 500 Error\r\nContent-Length: 0\r\n\r\n", 41);
    }
}

void serve_file(long conn, char *path) {
    long fd;
    long size;
    long st[2];
    char hdr[96];
    char num[24];
    fd = open(path, 0, 0);
    if (fd < 0) {
        send_error(conn, 404);
        return;
    }
    stat(path, st);
    size = st[0];
    strcpy(hdr, "HTTP/1.0 200 OK\r\nContent-Length: ");
    itoa(size, num);
    strcat(hdr, num);
    strcat(hdr, "\r\n\r\n");
    write(conn, hdr, strlen(hdr));
    sendfile(conn, fd, 0, size);
    close(fd);
}

// Request hashing / access-log work: the CPU-bound share of request
// processing (header hashing, log formatting) that real nginx does
// between syscalls.
long hash_bytes(char *buf, long n) {
    long h;
    long i;
    h = 5381;
    for (i = 0; i < n; i = i + 1) {
        h = h * 33 + buf[i];
        h = h ^ (h >> 13);
    }
    return h;
}

void access_log(char *path, long status, long h) {
    char line[192];
    char num[24];
    strcpy(line, "GET ");
    strcat(line, path);
    strcat(line, " ");
    itoa(status, num);
    strcat(line, num);
    strcat(line, " h=");
    itoa(h & 0xffff, num);
    strcat(line, num);
    strcat(line, "\n");
    // Hash the formatted line a few rounds (log-buffer dedup stand-in).
    long r;
    long acc;
    acc = 0;
    for (r = 0; r < 24; r = r + 1) {
        acc = acc + hash_bytes(line, strlen(line));
    }
    g_requests = g_requests + (acc & 1);
}

// Returns 1 to keep the connection alive, 0 on EOF/close.
long handle_request(long conn) {
    char buf[256];
    char path[128];
    char full[160];
    long n;
    long plen;
    long v;
    long h;
    n = read(conn, buf, 255);
    if (n <= 0) { return 0; }
    buf[n] = 0;
    plen = parse_request(buf, path);
    if (plen < 0) {
        send_error(conn, 500);
        return 1;
    }
    // Header-field hashing passes (nginx hashes each header into its
    // variables table).
    long hr;
    h = 0;
    for (hr = 0; hr < 4; hr = hr + 1) {
        h = h + hash_bytes(buf, n);
    }
    // Indexed-variable dispatch (Listing 2 path), index derived from the
    // request; legitimate traffic keeps it in bounds.
    v = get_indexed_variable(h, header_index(buf, n, plen & 3));
    // Output chain filtering (Listing 1's indirect callsite).
    v = ngx_output_chain(v);
    if (strcmp(path, "/upgrade") == 0) {
        ngx_execute_proc();
        return 1;
    }
    strcpy(full, "/www");
    strcat(full, path);
    serve_file(conn, full);
    access_log(path, 200, h + v);
    return 1;
}

void worker_init() {
    long i;
    long arena;
    // Per-worker connection pool arenas with guard-page protection.
    for (i = 0; i < 16; i = i + 1) {
        arena = mmap(0, 16384, 3, 0x21, 0 - 1, 0);
        if (i < 10) { mprotect(arena, 4096, 1); }
        if (i == 0) { g_arena = arena; }
    }
    // Upstream keep-alive connection.
    long up;
    long sa[2];
    sa[0] = 2 | 9090 * 65536;
    up = socket(2, 1, 0);
    connect(up, sa, 16);
    // Drop privileges.
    setgid(33);
    setuid(33);
}

// Event-loop layering mirrors nginx: the worker cycles through the event
// module, which accepts through a dedicated helper — giving sensitive
// syscalls the multi-frame call depth §9.2 measures (avg 5.2 for nginx).
long ngx_event_accept(long listener) {
    return accept4(listener, 0, 0, 0);
}

void ngx_process_events(long listener) {
    long conn;
    conn = ngx_event_accept(listener);
    if (conn < 0) { return; }
    // Keep-alive: serve requests until the client closes (wrk reuses
    // connections, which is why accept4 counts stay far below request
    // counts in Table 4).
    while (handle_request(conn)) { }
    close(conn);
}

void worker_loop(long listener) {
    worker_init();
    while (1) {
        ngx_process_events(listener);
    }
}

long main() {
    long listener;
    long sa[2];
    long i;
    long pid;
    long status;

    // Master init: module arenas (the paper observes most sensitive
    // syscalls fire during initialization).
    for (i = 0; i < 22; i = i + 1) {
        long a;
        a = mmap(0, 65536, 3, 0x21, 0 - 1, 0);
        if (i < 14) { mprotect(a, 4096, 1); }
    }

    // Listing 1 context: points at the upgrade binary. The pathname is
    // written at runtime (through libc strcpy), so the analysis shadows
    // its bytes — the extended-argument integrity of §3.3.
    strcpy(upgrade_path, "/usr/sbin/webserve-new");
    g_exec_ctx.path = upgrade_path;
    out_chain.output_filter = filter_plain;
    out_chain.filter_ctx = 0;
    vh[0].get_handler = h_host;   vh[0].data = 7;
    vh[1].get_handler = h_agent;  vh[1].data = 11;
    vh[2].get_handler = h_accept; vh[2].data = 13;
    vh[3].get_handler = h_cookie; vh[3].data = 0 - 1;
    vh[4].get_handler = h_admin;  vh[4].data = 7777;

    listener = socket(2, 1, 0);
    sa[0] = 2 | 80 * 65536;
    bind(listener, sa, 16);
    listen(listener, 1024);

    for (i = 0; i < 32; i = i + 1) {
        pid = clone(0, 0, 0, 0, 0);
        if (pid == 0) {
            worker_loop(listener);
            exit(0);
        }
    }
    // Master parks in wait4 like the nginx master process.
    while (1) {
        wait4(0 - 1, &status, 0, 0);
    }
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_compiles() {
        let m = bastion_minic::compile_program("webserve", &[SOURCE]).unwrap();
        assert!(m.func_by_name("ngx_execute_proc").is_some());
        assert!(m.func_by_name("get_indexed_variable").is_some());
        assert!(m.func_by_name("worker_loop").is_some());
    }
}
