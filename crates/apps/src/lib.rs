//! # bastion-apps
//!
//! The three system-call-intensive workload applications of the paper's
//! evaluation (§9), rebuilt in MiniC, plus the load generators that drive
//! them:
//!
//! | Paper | Here | Workload |
//! |---|---|---|
//! | NGINX web server | [`webserve`] | [`loadgen::http_load`] (wrk) |
//! | SQLite + DBT2 | [`dbkv`] | [`loadgen::tpcc_load`] (DBT2) |
//! | vsftpd | [`ftpd`] | [`loadgen::ftp_load`] (dkftpbench) |
//!
//! [`App`] bundles each program with its VFS fixtures and ports so
//! harnesses (benchmarks, attack scenarios, examples) can launch any of
//! them uniformly.

pub mod dbkv;
pub mod ftpd;
pub mod loadgen;
pub mod traffic;
pub mod webserve;

use bastion_ir::Module;
use bastion_kernel::World;
use bastion_minic::{compile_program, FrontError};

/// One of the three evaluation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// The NGINX analogue.
    Webserve,
    /// The SQLite/DBT2 analogue.
    Dbkv,
    /// The vsftpd analogue.
    Ftpd,
}

/// All three applications in paper order.
pub const ALL_APPS: [App; 3] = [App::Webserve, App::Dbkv, App::Ftpd];

impl App {
    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            App::Webserve => "NGINX (webserve)",
            App::Dbkv => "SQLite (dbkv)",
            App::Ftpd => "vsFTPd (ftpd)",
        }
    }

    /// Short identifier.
    pub fn id(self) -> &'static str {
        match self {
            App::Webserve => "webserve",
            App::Dbkv => "dbkv",
            App::Ftpd => "ftpd",
        }
    }

    /// MiniC source of the application.
    pub fn source(self) -> &'static str {
        match self {
            App::Webserve => webserve::SOURCE,
            App::Dbkv => dbkv::SOURCE,
            App::Ftpd => ftpd::SOURCE,
        }
    }

    /// Listener port the load generator targets.
    pub fn port(self) -> u16 {
        match self {
            App::Webserve => webserve::PORT,
            App::Dbkv => dbkv::PORT,
            App::Ftpd => ftpd::PORT,
        }
    }

    /// Compiles the application (libc prelude included, uninstrumented).
    ///
    /// # Errors
    /// Propagates front-end errors (none for the shipped sources).
    pub fn module(self) -> Result<Module, FrontError> {
        compile_program(self.id(), &[self.source()])
    }

    /// Installs the application's filesystem fixtures into a world.
    pub fn setup_vfs(self, world: &mut World) {
        match self {
            App::Webserve => {
                let page: Vec<u8> = page_bytes(webserve::PAGE_BYTES);
                world.kernel.vfs.put_file(webserve::PAGE_PATH, page, 0o644);
                world.kernel.vfs.put_file(
                    webserve::UPGRADE_PATH,
                    vec![0x7f, b'E', b'L', b'F'],
                    0o755,
                );
            }
            App::Dbkv => {
                world.kernel.vfs.put_file(dbkv::WAL_PATH, Vec::new(), 0o600);
            }
            App::Ftpd => {
                let payload: Vec<u8> = (0..ftpd::FILE_BYTES)
                    .map(|i| (i * 31 % 251) as u8)
                    .collect();
                world.kernel.vfs.put_file(ftpd::FILE_PATH, payload, 0o644);
            }
        }
    }

    /// How the paper measures this application (Table 3 caption).
    pub fn metric_label(self) -> &'static str {
        match self {
            App::Webserve => "MB/sec",
            App::Dbkv => "NOTPM",
            App::Ftpd => "sec (100 MB)",
        }
    }
}

/// Deterministic pseudo-HTML page content of the given size.
fn page_bytes(n: usize) -> Vec<u8> {
    let body = b"<html><body><p>bastion reproduction static page</p></body></html>\n";
    body.iter().copied().cycle().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_compile_and_validate() {
        for app in ALL_APPS {
            let m = app.module().unwrap_or_else(|e| panic!("{}: {e}", app.id()));
            assert!(m.func_by_name("main").is_some(), "{}", app.id());
        }
    }

    #[test]
    fn fixtures_install() {
        for app in ALL_APPS {
            let mut w = World::new(bastion_vm::CostModel::default());
            app.setup_vfs(&mut w);
            assert!(w.kernel.vfs.file_count() > 0, "{}", app.id());
        }
        let mut w = World::new(bastion_vm::CostModel::default());
        App::Webserve.setup_vfs(&mut w);
        assert_eq!(
            w.kernel.vfs.file(webserve::PAGE_PATH).unwrap().data.len(),
            webserve::PAGE_BYTES
        );
    }
}
