//! Stepped (non-blocking) traffic drivers for the `bastion serve`
//! supervisor.
//!
//! The [`loadgen`](crate::loadgen) generators own the scheduler: they call
//! `world.run` in a loop until the workload completes, which is right for
//! one world run to completion but wrong for a supervisor multiplexing
//! hundreds of tenant worlds under a round-robin quantum. These drivers
//! invert control: [`Traffic::pump`] plays one slice of the client side —
//! open connections, send what can be sent, consume what arrived — and
//! returns, leaving every `world.run` call to the supervisor's scheduler.
//!
//! Protocol framing, keep-alive quotas, and the latency sketch lane
//! ([`loadgen::REQUEST_CYCLES_SKETCH`]) are shared with the blocking
//! generators, so per-request latency distributions are comparable between
//! `bastion bench` and `bastion serve`.

use crate::loadgen::{complete_response, order_cmd, KEEPALIVE_REQUESTS, REQUEST_CYCLES_SKETCH};
use crate::App;
use bastion_kernel::{ExtConnId, World};
use bastion_obs as obs;

/// A resumable client-side workload for one tenant world.
#[derive(Debug)]
pub enum Traffic {
    /// wrk-style keep-alive HTTP load (webserve).
    Http(HttpTraffic),
    /// DBT2-style transaction sessions (dbkv).
    Tpcc(TpccTraffic),
    /// dkftpbench-style sequential download sessions (ftpd).
    Ftp(FtpTraffic),
}

impl Traffic {
    /// The standard driver for `app`: `requests` total requests /
    /// transactions / downloads over `concurrency` client connections
    /// (FTP sessions are sequential by construction, like dkftpbench).
    pub fn for_app(app: App, requests: u64, concurrency: usize) -> Traffic {
        match app {
            App::Webserve => Traffic::Http(HttpTraffic::new(app.port(), concurrency, requests)),
            App::Dbkv => Traffic::Tpcc(TpccTraffic::new(app.port(), concurrency, requests)),
            App::Ftpd => Traffic::Ftp(FtpTraffic::new(
                app.port(),
                requests,
                crate::ftpd::FILE_PATH,
            )),
        }
    }

    /// Plays one client slice against `world` without running the
    /// scheduler. Returns whether any externally visible progress happened
    /// (a connection opened, bytes moved, a request completed) — the
    /// supervisor's stall detector keys off this.
    pub fn pump(&mut self, world: &mut World) -> bool {
        match self {
            Traffic::Http(t) => t.pump(world),
            Traffic::Tpcc(t) => t.pump(world),
            Traffic::Ftp(t) => t.pump(world),
        }
    }

    /// Whether the workload has fully completed (all requests served and
    /// every client connection closed).
    pub fn done(&self) -> bool {
        match self {
            Traffic::Http(t) => t.requests >= t.total && t.conns.is_empty(),
            Traffic::Tpcc(t) => t.transactions >= t.total && t.closed,
            Traffic::Ftp(t) => t.files >= t.downloads && t.state == FtpState::Between,
        }
    }

    /// Requests / transactions / downloads completed so far.
    pub fn served(&self) -> u64 {
        match self {
            Traffic::Http(t) => t.requests,
            Traffic::Tpcc(t) => t.transactions,
            Traffic::Ftp(t) => t.files,
        }
    }

    /// Total requests this driver will issue.
    pub fn target(&self) -> u64 {
        match self {
            Traffic::Http(t) => t.total,
            Traffic::Tpcc(t) => t.total,
            Traffic::Ftp(t) => t.downloads,
        }
    }

    /// Payload bytes received so far (HTTP responses, FTP data).
    pub fn bytes(&self) -> u64 {
        match self {
            Traffic::Http(t) => t.bytes,
            Traffic::Tpcc(_) => 0,
            Traffic::Ftp(t) => t.bytes,
        }
    }
}

struct HttpConn {
    id: ExtConnId,
    buf: Vec<u8>,
    remaining: u64,
    outstanding: bool,
    sent_at: u64,
}

impl std::fmt::Debug for HttpConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpConn")
            .field("id", &self.id)
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// Stepped analogue of [`crate::loadgen::http_load`]: the same
/// deterministic connection plan ([`KEEPALIVE_REQUESTS`] per keep-alive
/// connection), one outstanding request per connection.
#[derive(Debug)]
pub struct HttpTraffic {
    port: u16,
    concurrency: usize,
    total: u64,
    plan: Vec<u64>,
    next_conn: usize,
    issued: u64,
    conns: Vec<HttpConn>,
    /// Completed requests.
    pub requests: u64,
    /// Response bytes received.
    pub bytes: u64,
}

impl HttpTraffic {
    /// A driver for `total` requests over `concurrency` connections.
    pub fn new(port: u16, concurrency: usize, total: u64) -> Self {
        let mut plan = Vec::new();
        let mut left = total;
        while left > 0 {
            let q = KEEPALIVE_REQUESTS.min(left);
            plan.push(q);
            left -= q;
        }
        HttpTraffic {
            port,
            concurrency: concurrency.max(1),
            total,
            plan,
            next_conn: 0,
            issued: 0,
            conns: Vec::new(),
            requests: 0,
            bytes: 0,
        }
    }

    fn pump(&mut self, world: &mut World) -> bool {
        const REQUEST: &[u8] = b"GET /index.html HTTP/1.1\r\nHost: bench\r\n\r\n";
        let mut progressed = false;
        while self.conns.len() < self.concurrency && self.next_conn < self.plan.len() {
            let Some(id) = world.net_connect(self.port) else {
                break; // backlog full; let the server drain first
            };
            let quota = self.plan[self.next_conn];
            self.next_conn += 1;
            world.net_send(id, REQUEST);
            self.issued += 1;
            progressed = true;
            self.conns.push(HttpConn {
                id,
                buf: Vec::new(),
                remaining: quota - 1,
                outstanding: true,
                sent_at: world.now(),
            });
        }
        let mut i = 0;
        while i < self.conns.len() {
            let chunk = world.net_recv(self.conns[i].id);
            if !chunk.is_empty() {
                self.conns[i].buf.extend_from_slice(&chunk);
                progressed = true;
            }
            while let Some(len) = complete_response(&self.conns[i].buf) {
                self.conns[i].buf.drain(..len);
                self.conns[i].outstanding = false;
                obs::sketch_observe(
                    REQUEST_CYCLES_SKETCH,
                    world.now().saturating_sub(self.conns[i].sent_at),
                );
                self.requests += 1;
                self.bytes += len as u64;
                progressed = true;
                if self.conns[i].remaining > 0 && self.issued < self.total {
                    world.net_send(self.conns[i].id, REQUEST);
                    self.conns[i].remaining -= 1;
                    self.conns[i].outstanding = true;
                    self.conns[i].sent_at = world.now();
                    self.issued += 1;
                }
            }
            let c = &self.conns[i];
            let exhausted = !c.outstanding && (c.remaining == 0 || self.issued >= self.total);
            if exhausted || world.net_server_closed(c.id) {
                world.net_close(c.id);
                self.conns.swap_remove(i);
                progressed = true;
            } else {
                i += 1;
            }
        }
        progressed
    }
}

/// Stepped analogue of [`crate::loadgen::tpcc_load`]: long-lived terminal
/// sessions, one outstanding NEWORDER per session.
#[derive(Debug)]
pub struct TpccTraffic {
    port: u16,
    sessions: usize,
    total: u64,
    /// `(conn, buffered_replies, sent_at)` per open session.
    conns: Vec<(ExtConnId, u64, u64)>,
    issued: u64,
    started: bool,
    closed: bool,
    /// Committed transactions.
    pub transactions: u64,
}

impl TpccTraffic {
    /// A driver for `total` transactions over `sessions` terminals.
    pub fn new(port: u16, sessions: usize, total: u64) -> Self {
        TpccTraffic {
            port,
            sessions: sessions.max(1),
            total,
            conns: Vec::new(),
            issued: 0,
            started: false,
            closed: false,
            transactions: 0,
        }
    }

    fn pump(&mut self, world: &mut World) -> bool {
        if !self.started {
            // Terminals connect up front and each seeds one transaction.
            for _ in 0..self.sessions {
                let Some(c) = world.net_connect(self.port) else {
                    break;
                };
                world.net_send(c, order_cmd(self.issued).as_bytes());
                self.conns.push((c, 0, world.now()));
                self.issued += 1;
            }
            if self.conns.is_empty() {
                return false; // server not parked in accept yet; retry
            }
            self.started = true;
            return true;
        }
        let mut progressed = false;
        let now = world.now();
        for (c, buffered, sent_at) in &mut self.conns {
            let chunk = world.net_recv(*c);
            if chunk.is_empty() {
                continue;
            }
            progressed = true;
            *buffered += chunk.iter().filter(|&&b| b == b'\n').count() as u64;
            while *buffered > 0 && self.transactions < self.total {
                *buffered -= 1;
                obs::sketch_observe(REQUEST_CYCLES_SKETCH, now.saturating_sub(*sent_at));
                self.transactions += 1;
                if self.issued < self.total {
                    world.net_send(*c, order_cmd(self.issued).as_bytes());
                    *sent_at = now;
                    self.issued += 1;
                }
            }
        }
        if self.transactions >= self.total && !self.closed {
            for (c, _, _) in self.conns.drain(..) {
                world.net_close(c);
            }
            self.closed = true;
            progressed = true;
        }
        progressed
    }
}

/// Where the FTP session state machine stands (one transition per pump).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FtpState {
    /// No session in flight (next pump opens one if downloads remain).
    Between,
    /// Awaiting the `220` greeting.
    Greeting,
    /// Sent `USER`, awaiting `331`.
    User,
    /// Sent `PASS`, awaiting `230`.
    Pass,
    /// Sent `RETR`, awaiting the `227 <port>` passive announcement.
    Pasv { retr_sent: bool },
    /// Data channel open; draining until the control channel says `226`.
    Transfer { data: ExtConnId },
    /// Sent `QUIT`; next pump tears the session down.
    Quit { data: ExtConnId },
}

/// Stepped analogue of [`crate::loadgen::ftp_load`]: sequential RETR
/// sessions, advanced one protocol transition per pump.
#[derive(Debug)]
pub struct FtpTraffic {
    port: u16,
    downloads: u64,
    path: &'static str,
    state: FtpState,
    ctrl: Option<ExtConnId>,
    ctrl_buf: Vec<u8>,
    pasv_port: u16,
    session_start: u64,
    /// Files fully downloaded.
    pub files: u64,
    /// Data-channel payload bytes received.
    pub bytes: u64,
}

impl FtpTraffic {
    /// A driver for `downloads` sequential sessions fetching `path`.
    pub fn new(port: u16, downloads: u64, path: &'static str) -> Self {
        FtpTraffic {
            port,
            downloads,
            path,
            state: FtpState::Between,
            ctrl: None,
            ctrl_buf: Vec::new(),
            pasv_port: 0,
            session_start: 0,
            files: 0,
            bytes: 0,
        }
    }

    /// Scans buffered control-channel lines for a reply starting with
    /// `code`; on a match consumes the buffer through that line and
    /// returns the line.
    fn take_reply(&mut self, code: &[u8]) -> Option<Vec<u8>> {
        let mut consumed = 0usize;
        for line in self.ctrl_buf.split_inclusive(|&b| b == b'\n') {
            consumed += line.len();
            if line.starts_with(code) {
                let reply = line.to_vec();
                self.ctrl_buf.drain(..consumed);
                return Some(reply);
            }
        }
        None
    }

    fn pump(&mut self, world: &mut World) -> bool {
        if let Some(c) = self.ctrl {
            let chunk = world.net_recv(c);
            self.ctrl_buf.extend_from_slice(&chunk);
        }
        match self.state {
            FtpState::Between => {
                if self.files >= self.downloads {
                    return false;
                }
                let Some(ctrl) = world.net_connect(self.port) else {
                    return false; // server still booting or backlog full
                };
                self.ctrl = Some(ctrl);
                self.ctrl_buf.clear();
                self.session_start = world.now();
                self.state = FtpState::Greeting;
                true
            }
            FtpState::Greeting => {
                if self.take_reply(b"220").is_some() {
                    world.net_send(self.ctrl.unwrap(), b"USER bench\n");
                    self.state = FtpState::User;
                    return true;
                }
                false
            }
            FtpState::User => {
                if self.take_reply(b"331").is_some() {
                    world.net_send(self.ctrl.unwrap(), b"PASS bench\n");
                    self.state = FtpState::Pass;
                    return true;
                }
                false
            }
            FtpState::Pass => {
                if self.take_reply(b"230").is_some() {
                    world.net_send(
                        self.ctrl.unwrap(),
                        format!("RETR {}\n", self.path).as_bytes(),
                    );
                    self.state = FtpState::Pasv { retr_sent: true };
                    return true;
                }
                false
            }
            FtpState::Pasv { .. } => {
                if self.pasv_port == 0 {
                    let Some(reply) = self.take_reply(b"227") else {
                        return false;
                    };
                    self.pasv_port = String::from_utf8_lossy(&reply[4..])
                        .trim()
                        .parse()
                        .expect("pasv port");
                }
                // The passive connect can race the server's listen; keep
                // retrying on subsequent pumps.
                let Some(data) = world.net_connect(self.pasv_port) else {
                    return false;
                };
                self.pasv_port = 0;
                self.state = FtpState::Transfer { data };
                true
            }
            FtpState::Transfer { data } => {
                let mut progressed = false;
                let chunk = world.net_recv(data);
                if !chunk.is_empty() {
                    self.bytes += chunk.len() as u64;
                    progressed = true;
                }
                if self.take_reply(b"226").is_some() {
                    // Drain trailing data bytes that landed with the 226.
                    let tail = world.net_recv(data);
                    self.bytes += tail.len() as u64;
                    self.files += 1;
                    obs::sketch_observe(
                        REQUEST_CYCLES_SKETCH,
                        world.now().saturating_sub(self.session_start),
                    );
                    world.net_send(self.ctrl.unwrap(), b"QUIT\n");
                    self.state = FtpState::Quit { data };
                    progressed = true;
                }
                progressed
            }
            FtpState::Quit { data } => {
                self.ctrl_buf.clear();
                world.net_close(data);
                world.net_close(self.ctrl.take().unwrap());
                self.state = FtpState::Between;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_plan_matches_blocking_generator() {
        let t = HttpTraffic::new(8080, 4, 100);
        // 100 requests = 3 full keep-alive connections of 29 + one of 13.
        assert_eq!(t.plan, vec![29, 29, 29, 13]);
        let empty = HttpTraffic::new(8080, 4, 0);
        assert!(empty.plan.is_empty());
        assert!(Traffic::Http(empty).done());
    }

    #[test]
    fn ftp_reply_scan_consumes_through_match() {
        let mut t = FtpTraffic::new(2100, 1, "/f");
        t.ctrl_buf = b"220 hello\n331 pw\nxx".to_vec();
        assert_eq!(t.take_reply(b"220").unwrap(), b"220 hello\n");
        assert!(t.take_reply(b"226").is_none(), "no 226 buffered yet");
        assert_eq!(t.take_reply(b"331").unwrap(), b"331 pw\n");
        assert_eq!(t.ctrl_buf, b"xx");
    }

    #[test]
    fn traffic_reports_targets() {
        for app in crate::ALL_APPS {
            let t = Traffic::for_app(app, 12, 2);
            assert_eq!(t.target(), 12, "{}", app.id());
            assert_eq!(t.served(), 0);
            assert!(!t.done() || t.target() == 0);
        }
    }
}
