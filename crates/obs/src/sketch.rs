//! Deterministic mergeable quantile sketch (DDSketch-style, zero-dep).
//!
//! The registry's fixed-bucket [`crate::metrics::Histogram`] answers "how
//! many traps cost 512..1024 cycles", but a serving system wants p50/p95/
//! p99/p999 lanes with a bounded relative error, mergeable across fleet
//! workers without losing accuracy. This sketch maps every `u64`
//! observation to a log-bucketed index with **pure integer arithmetic**:
//!
//! * values `< 128` index themselves (the linear region — exact);
//! * larger values take a base-2 exponent plus the top [`SUB_BITS`]
//!   mantissa bits, i.e. 64 sub-buckets per octave, so the worst-case
//!   relative half-width of any bucket is `2^-7 ≈ 0.78%` — comfortably
//!   inside the 2% accuracy contract `BENCH_obs.json` gates.
//!
//! Because the bucket index of a value is a pure function of the value
//! (no floats, no insertion-order effects) and [`QuantileSketch::merge`]
//! is a per-index counter sum, merging per-worker sketches in task order
//! is **bit-for-bit identical** to observing the single interleaved
//! stream — the same determinism contract the fleet runner's registry
//! merge already guarantees (DESIGN.md §6f), proven by the proptests
//! below and the fleet integration tests.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mantissa bits kept per octave: 64 sub-buckets, ≤0.78% relative error.
pub const SUB_BITS: u32 = 6;
/// First index of the logarithmic region (values below this are exact).
const LINEAR_CUTOFF: u64 = 1 << (SUB_BITS + 1);

/// Bucket index for an observation. Deterministic integer math only.
#[must_use]
pub fn bucket_index(v: u64) -> u32 {
    if v < LINEAR_CUTOFF {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as u32;
    ((msb - SUB_BITS) << SUB_BITS) + sub + LINEAR_CUTOFF as u32 / 2
}

/// The representative (midpoint) value reported for a bucket index.
#[must_use]
pub fn bucket_value(index: u32) -> u64 {
    if u64::from(index) < LINEAR_CUTOFF {
        return u64::from(index);
    }
    let i = index - LINEAR_CUTOFF as u32 / 2;
    let msb = (i >> SUB_BITS) + SUB_BITS;
    let sub = u64::from(i & ((1 << SUB_BITS) - 1));
    let lo = (1u64 << msb) + (sub << (msb - SUB_BITS));
    lo + (1u64 << (msb - SUB_BITS)) / 2
}

/// A deterministic log-bucketed quantile sketch over `u64` observations.
///
/// Buckets are held sparse (`BTreeMap`), so an idle sketch costs a few
/// words and a trap-latency sketch a few dozen entries. All state is
/// canonically ordered, making serialized snapshots byte-comparable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl QuantileSketch {
    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Folds another sketch in: per-index counter sums plus min/max/count.
    /// Order-independent and associative, so any fleet merge tree yields
    /// the same sketch as the single-stream observation order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (wrapping).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `0` when empty (no `u64::MAX` sentinel —
    /// the bug class PR 1 fixed for `min_depth`).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, `0` when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` (nearest-rank, bucket midpoint), clamped
    /// to the observed `[min, max]`; `0` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64) as u64;
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen > rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fixed percentile lane (p50/p95/p99/p999) snapshot.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> SketchSnapshot {
        SketchSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets: self
                .buckets
                .iter()
                .map(|(&index, &count)| SketchBucket { index, count })
                .collect(),
        }
    }
}

/// One sparse bucket in a serialized sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchBucket {
    /// Log-bucket index (see [`bucket_index`]).
    pub index: u32,
    /// Observations landing in this bucket.
    pub count: u64,
}

/// Serializable sketch state: percentile lanes plus the raw sparse
/// buckets (the buckets make merge byte-identity provable end-to-end,
/// not just at the percentile level).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchSnapshot {
    /// Sketch name (registry key).
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Sparse bucket counters, ascending by index.
    pub buckets: Vec<SketchBucket>,
}

impl SketchSnapshot {
    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The four percentile lanes as `(label, value)` pairs.
    #[must_use]
    pub fn lanes(&self) -> [(&'static str, u64); 4] {
        [
            ("0.5", self.p50),
            ("0.95", self.p95),
            ("0.99", self.p99),
            ("0.999", self.p999),
        ]
    }
}

/// Exact nearest-rank percentile over a raw sample list — the oracle the
/// accuracy gate compares sketch lanes against (`BENCH_obs.json`).
#[must_use]
pub fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64) as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Sampled sweep across the full range: the reported midpoint is
        // always within 1% of the true value.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for off in [0, 1, v / 3, v / 2] {
                let x = v + off;
                let rep = bucket_value(bucket_index(x));
                let err = rep.abs_diff(x) as f64 / x as f64;
                assert!(err <= 0.01, "value {x} reported {rep} ({err:.4} rel)");
            }
            v = v.saturating_mul(2);
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = bucket_index(0);
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
            v += (v / 7).max(1);
        }
    }

    #[test]
    fn empty_sketch_reports_zeroes() {
        let s = QuantileSketch::new();
        assert_eq!(s.min(), 0, "no u64::MAX sentinel may escape");
        assert_eq!(s.quantile(0.99), 0);
        let snap = s.snapshot("idle");
        assert_eq!((snap.min, snap.p50, snap.p999), (0, 0, 0));
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn quantiles_track_exact_within_contract() {
        let mut s = QuantileSketch::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 17u64;
        for _ in 0..10_000 {
            // Deterministic xorshift stream spanning several octaves.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 2_000_000;
            s.observe(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.95, 0.99, 0.999] {
            let truth = exact_quantile(&exact, q);
            let got = s.quantile(q);
            let err = got.abs_diff(truth) as f64 / truth.max(1) as f64;
            assert!(err <= 0.02, "q={q}: sketch {got} vs exact {truth}");
        }
        assert_eq!(s.count(), 10_000);
    }

    #[test]
    fn merge_equals_single_stream() {
        let vals: Vec<u64> = (0..999).map(|i| (i * i * 31 + 7) % 100_000).collect();
        let mut single = QuantileSketch::new();
        for &v in &vals {
            single.observe(v);
        }
        for workers in [1usize, 2, 4, 7] {
            let mut shards = vec![QuantileSketch::new(); workers];
            for (i, &v) in vals.iter().enumerate() {
                shards[i % workers].observe(v);
            }
            let mut merged = QuantileSketch::new();
            for sh in &shards {
                merged.merge(sh);
            }
            assert_eq!(merged, single, "{workers} workers diverged");
            assert_eq!(
                serde_json::to_string(&merged.snapshot("s")).unwrap(),
                serde_json::to_string(&single.snapshot("s")).unwrap(),
                "serialized snapshot diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn merge_into_empty_and_of_empty() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        b.observe(42);
        b.observe(7);
        a.merge(&b);
        assert_eq!(a, b);
        let before = a.clone();
        a.merge(&QuantileSketch::new());
        assert_eq!(a, before, "merging an empty sketch must be a no-op");
        assert_eq!(a.min(), 7);
    }

    proptest::proptest! {
        /// Sharding any value stream over 1/2/4 workers and merging the
        /// per-worker sketches is bit-for-bit the single-stream sketch.
        #[test]
        fn prop_merge_is_shard_invariant(
            vals in proptest::collection::vec(proptest::any::<u64>(), 0..200),
        ) {
            let mut single = QuantileSketch::new();
            for &v in &vals {
                single.observe(v);
            }
            for workers in [1usize, 2, 4] {
                let mut shards = vec![QuantileSketch::new(); workers];
                for (i, &v) in vals.iter().enumerate() {
                    shards[i % workers].observe(v);
                }
                let mut merged = QuantileSketch::new();
                for sh in &shards {
                    merged.merge(sh);
                }
                proptest::prop_assert_eq!(&merged, &single);
            }
        }

        /// Every value's reported bucket midpoint stays inside the 1%
        /// relative-error bound, across the whole u64 range.
        #[test]
        fn prop_bucket_error_bounded(v in proptest::any::<u64>()) {
            let rep = bucket_value(bucket_index(v));
            let err = rep.abs_diff(v) as f64 / (v.max(1)) as f64;
            proptest::prop_assert!(err <= 0.01, "{v} -> {rep}");
        }
    }
}
