//! # bastion-obs
//!
//! End-to-end telemetry for the BASTION stack: per-trap span tracing, a
//! metrics registry with mergeable quantile sketches, the deny-provenance
//! audit log, an always-on flight recorder, and exporters (Chrome
//! `trace_event` JSON, metrics JSON/JSONL, Prometheus text exposition).
//! Zero external dependencies beyond the in-repo serde shims.
//!
//! ## Overhead policy
//!
//! Instrumentation lives on the monitor trap pipeline, so the disabled path
//! must be unmeasurable: every recording entry point checks a thread-local
//! `Cell<bool>` first and returns after that **single branch** when
//! telemetry is off. Nothing is allocated, no clock is read, and — crucially
//! for the deterministic benchmarks — no virtual cycles are ever charged by
//! this crate, so clean-path cycle counts are bit-identical with telemetry
//! on *or* off; only wall-clock time differs.
//!
//! ## Clock model
//!
//! Events carry two timestamps: `vcycles`, the world's monitor-time clock
//! (`World::trace_cycles`, which is the only clock that advances while a
//! tracee is stopped in a trap), and `wall_ns`, a monotonic wall-clock
//! anchored when tracing was enabled. `vcycles` is deterministic and is what
//! exporters use as the Chrome-trace timeline; `wall_ns` is diagnostic.
//!
//! ## Deny provenance
//!
//! [`DenyRecord`] is *not* gated by the enable flag: denies are terminal
//! (the tracee is killed), so structured provenance is always captured by
//! the monitor and queryable by tests, the chaos harness, and the CLI. An
//! optional thread-local sink streams records as they occur (`--verbose`).

pub mod deny;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod sketch;
pub mod span;

pub use deny::{DenyContext, DenyRecord, DenyRule, FaultCtx};
pub use export::{
    chrome_trace_json, chrome_trace_json_parts, metrics_json, metrics_jsonl_line, phase_totals,
    prometheus_text, validate_chrome_trace, validate_prometheus, PhaseTotal, PromShape, TraceShape,
};
pub use flight::{FlightDump, FlightEntry, FlightRecorder, FlightTrigger};
pub use metrics::{
    BucketSnapshot, CounterSnapshot, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    BOUNDS_MISMATCH_COUNTER,
};
pub use sketch::{QuantileSketch, SketchBucket, SketchSnapshot};
pub use span::{EventKind, Phase, SpanTracer, TraceEvent};

use std::cell::{Cell, RefCell};

/// A deny-record consumer installed with [`set_deny_sink`].
pub type DenySink = Box<dyn FnMut(&DenyRecord)>;

thread_local! {
    /// The single branch the disabled path pays.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Option<SpanTracer>> = const { RefCell::new(None) };
    static METRICS: RefCell<Option<MetricsRegistry>> = const { RefCell::new(None) };
    static DENY_SINK: RefCell<Option<DenySink>> = const { RefCell::new(None) };
}

/// Enables telemetry on this thread with a span ring buffer of `capacity`
/// events (preallocated up front; recording never allocates afterwards).
/// Also resets the metrics registry.
pub fn enable(capacity: usize) {
    TRACER.with(|t| *t.borrow_mut() = Some(SpanTracer::new(capacity)));
    METRICS.with(|m| *m.borrow_mut() = Some(MetricsRegistry::new()));
    ENABLED.with(|e| e.set(true));
}

/// Disables telemetry on this thread and drops the tracer and registry.
pub fn disable() {
    ENABLED.with(|e| e.set(false));
    TRACER.with(|t| *t.borrow_mut() = None);
    METRICS.with(|m| *m.borrow_mut() = None);
}

/// Whether telemetry is enabled on this thread.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// RAII scope for the thread-local telemetry state: swaps in a fresh span
/// ring + metrics registry and restores whatever was installed before on
/// drop (including on panic), so telemetry cannot leak into later tests or
/// into fleet workers that reuse the same OS thread.
///
/// Call [`TelemetryGuard::finish`] to harvest the scope's events and
/// registry (the fleet runner merges them across workers); merely dropping
/// the guard discards them.
#[derive(Debug)]
pub struct TelemetryGuard {
    prev: Option<(bool, Option<SpanTracer>, Option<MetricsRegistry>)>,
}

impl TelemetryGuard {
    /// Enables telemetry on this thread with a fresh ring of `capacity`
    /// events and a fresh metrics registry, saving the previous state.
    #[must_use = "dropping the guard immediately restores the previous telemetry state"]
    pub fn enable(capacity: usize) -> Self {
        let prev_enabled = ENABLED.with(Cell::get);
        let prev_tracer = TRACER.with(|t| t.borrow_mut().replace(SpanTracer::new(capacity)));
        let prev_metrics = METRICS.with(|m| m.borrow_mut().replace(MetricsRegistry::new()));
        ENABLED.with(|e| e.set(true));
        TelemetryGuard {
            prev: Some((prev_enabled, prev_tracer, prev_metrics)),
        }
    }

    /// Drains this scope's events and takes its registry, then restores
    /// the previous telemetry state.
    pub fn finish(mut self) -> (Vec<TraceEvent>, MetricsRegistry) {
        let events = take_events();
        let registry = METRICS.with(|m| m.borrow_mut().take()).unwrap_or_default();
        self.restore();
        (events, registry)
    }

    fn restore(&mut self) {
        if let Some((enabled, tracer, metrics)) = self.prev.take() {
            ENABLED.with(|e| e.set(enabled));
            TRACER.with(|t| *t.borrow_mut() = tracer);
            METRICS.with(|m| *m.borrow_mut() = metrics);
        }
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        self.restore();
    }
}

/// Total events recorded since [`enable`] (including any overwritten by
/// ring wraparound). 0 when telemetry was never enabled.
pub fn event_count() -> u64 {
    TRACER.with(|t| t.borrow().as_ref().map_or(0, |s| s.total_recorded()))
}

/// Drains the ring buffer, returning its events in chronological order.
/// Tracing stays enabled; subsequent events land in the emptied ring.
pub fn take_events() -> Vec<TraceEvent> {
    TRACER.with(|t| {
        t.borrow_mut()
            .as_mut()
            .map_or_else(Vec::new, SpanTracer::take)
    })
}

/// Opens a span. A no-op (single branch) when telemetry is disabled.
#[inline]
pub fn span_begin(phase: Phase, trap: u64, vcycles: u64) {
    if !ENABLED.with(Cell::get) {
        return;
    }
    record(TraceEvent::new(EventKind::Begin, phase, trap, vcycles, 0));
}

/// Closes a span; `arg` carries a phase-specific payload (walk depth,
/// pointee bytes, deny flag). A no-op when telemetry is disabled.
#[inline]
pub fn span_end(phase: Phase, trap: u64, vcycles: u64, arg: u64) {
    if !ENABLED.with(Cell::get) {
        return;
    }
    record(TraceEvent::new(EventKind::End, phase, trap, vcycles, arg));
}

/// Records an instantaneous event (cache hit, retry, deny marker). A no-op
/// when telemetry is disabled.
#[inline]
pub fn instant(phase: Phase, trap: u64, vcycles: u64, arg: u64) {
    if !ENABLED.with(Cell::get) {
        return;
    }
    record(TraceEvent::new(
        EventKind::Instant,
        phase,
        trap,
        vcycles,
        arg,
    ));
}

fn record(ev: TraceEvent) {
    TRACER.with(|t| {
        if let Some(s) = t.borrow_mut().as_mut() {
            s.record(ev);
        }
    });
}

/// Adds `delta` to the named counter. A no-op when telemetry is disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !ENABLED.with(Cell::get) {
        return;
    }
    METRICS.with(|m| {
        if let Some(r) = m.borrow_mut().as_mut() {
            r.counter_add(name, delta);
        }
    });
}

/// Records `value` into the named histogram (registered on first use with
/// default power-of-two buckets). A no-op when telemetry is disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !ENABLED.with(Cell::get) {
        return;
    }
    METRICS.with(|m| {
        if let Some(r) = m.borrow_mut().as_mut() {
            r.observe(name, value);
        }
    });
}

/// Records `value` into the named quantile sketch (log-bucketed, see
/// [`sketch::QuantileSketch`]). A no-op when telemetry is disabled.
#[inline]
pub fn sketch_observe(name: &'static str, value: u64) {
    if !ENABLED.with(Cell::get) {
        return;
    }
    METRICS.with(|m| {
        if let Some(r) = m.borrow_mut().as_mut() {
            r.sketch_observe(name, value);
        }
    });
}

/// Registers a histogram with explicit bucket bounds (ascending upper
/// edges; an overflow bucket is implicit). A no-op when disabled.
pub fn register_histogram(name: &'static str, bounds: &[u64]) {
    if !ENABLED.with(Cell::get) {
        return;
    }
    METRICS.with(|m| {
        if let Some(r) = m.borrow_mut().as_mut() {
            r.register_histogram(name, bounds);
        }
    });
}

/// Snapshots the metrics registry as a plain serializable struct. Empty
/// when telemetry is disabled.
pub fn metrics_snapshot() -> MetricsSnapshot {
    METRICS.with(|m| {
        m.borrow()
            .as_ref()
            .map_or_else(MetricsSnapshot::default, MetricsRegistry::snapshot)
    })
}

/// Installs a deny-record sink streaming each record as it is produced
/// (the CLI's `--verbose` surface). Independent of the enable flag: deny
/// provenance is always captured.
pub fn set_deny_sink(sink: DenySink) {
    DENY_SINK.with(|s| *s.borrow_mut() = Some(sink));
}

/// Removes any installed deny sink.
pub fn clear_deny_sink() {
    DENY_SINK.with(|s| *s.borrow_mut() = None);
}

/// Delivers a deny record to the installed sink, if any. One branch when no
/// sink is installed; never gated on the enable flag (denies are rare and
/// terminal).
pub fn emit_deny(rec: &DenyRecord) {
    DENY_SINK.with(|s| {
        if let Some(f) = s.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_records_nothing() {
        disable();
        span_begin(Phase::Trap, 1, 100);
        span_end(Phase::Trap, 1, 200, 0);
        instant(Phase::Retry, 1, 150, 1);
        counter_add("x", 1);
        observe("y", 5);
        sketch_observe("z", 9);
        assert_eq!(event_count(), 0);
        assert!(take_events().is_empty());
        assert!(metrics_snapshot().counters.is_empty());
        assert!(metrics_snapshot().sketches.is_empty());
    }

    #[test]
    fn enabled_roundtrip() {
        enable(16);
        span_begin(Phase::Trap, 1, 100);
        span_begin(Phase::CtCheck, 1, 110);
        span_end(Phase::CtCheck, 1, 150, 0);
        span_end(Phase::Trap, 1, 200, 0);
        counter_add("monitor.traps", 1);
        observe("monitor.walk_depth", 3);
        assert_eq!(event_count(), 4);
        let evs = take_events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].phase, Phase::Trap);
        assert_eq!(evs[0].kind, EventKind::Begin);
        let snap = metrics_snapshot();
        assert_eq!(snap.counters[0].value, 1);
        assert_eq!(snap.histograms[0].count, 1);
        disable();
        assert_eq!(event_count(), 0);
    }

    #[test]
    fn telemetry_guard_restores_outer_state() {
        // Outer telemetry with one recorded event.
        enable(8);
        span_begin(Phase::Trap, 1, 10);
        {
            let g = TelemetryGuard::enable(8);
            assert!(is_enabled());
            assert_eq!(event_count(), 0, "guard starts a fresh ring");
            instant(Phase::Retry, 9, 20, 0);
            counter_add("worker.only", 3);
            let (events, reg) = g.finish();
            assert_eq!(events.len(), 1);
            assert_eq!(reg.snapshot().counter("worker.only"), Some(3));
        }
        // Outer ring and registry are back, untouched by the scope.
        assert!(is_enabled());
        assert_eq!(event_count(), 1);
        assert_eq!(take_events()[0].phase, Phase::Trap);
        assert_eq!(metrics_snapshot().counter("worker.only"), None);
        disable();
        // A dropped (unfinished) guard also restores: disabled stays
        // disabled afterwards.
        {
            let _g = TelemetryGuard::enable(4);
            assert!(is_enabled());
        }
        assert!(!is_enabled());
        assert_eq!(event_count(), 0);
    }

    #[test]
    fn deny_sink_streams_records() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        set_deny_sink(Box::new(move |r| seen2.borrow_mut().push(r.trap_seq)));
        let rec = DenyRecord {
            trap_seq: 7,
            sysno: 59,
            context: DenyContext::CallType,
            rule: DenyRule::NotCallable,
            expected: None,
            observed: None,
            fault_ctx: FaultCtx::default(),
            ladder_rung: "full".to_string(),
            message: "syscall 59 is not-callable".to_string(),
            flight: Vec::new(),
        };
        emit_deny(&rec);
        clear_deny_sink();
        emit_deny(&rec);
        assert_eq!(*seen.borrow(), vec![7]);
        assert_eq!(rec.render(), "CT: syscall 59 is not-callable");
    }
}
