//! The span tracer: a bounded, preallocated ring buffer of structured
//! trace events.
//!
//! Each monitor trap opens a [`Phase::Trap`] span; verification stages
//! nest typed child phases inside it. The ring overwrites its oldest
//! events on wraparound — long runs keep a sliding window of the most
//! recent activity, and the exporter re-balances orphaned begin/end
//! markers so a wrapped buffer still yields a well-formed trace.

/// Event flavor, mirroring Chrome `trace_event` phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span open (`"B"`).
    Begin,
    /// Span close (`"E"`).
    End,
    /// Instantaneous marker (`"i"`): cache hit, retry, deny.
    Instant,
}

/// The typed phase taxonomy of the trap pipeline (DESIGN.md §6e).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Root span: one per monitor trap, opened by the kernel world around
    /// the whole tracer stop (includes the ptrace stop cost).
    Trap,
    /// Instant: the seccomp filter classified this syscall as traced.
    SeccompClassify,
    /// Tier-1 prefilter evaluation at seccomp-classify time (no monitor
    /// stop). Nested directly inside [`Phase::Trap`].
    PrefilterCheck,
    /// Instant: the prefilter escalated this trap to the full monitor
    /// (arg = escalation reason code).
    PrefilterEscalate,
    /// `PTRACE_GETREGS` register snapshot (with retries).
    GetRegs,
    /// Trap-frame head fetch (batched or word-by-word).
    FrameRead,
    /// Call-Type verdict (§7.2), cached or computed.
    CtCheck,
    /// Control-Flow stack walk + chain validation (§7.3).
    CfWalk,
    /// Argument Integrity direct checks: registers, bindings, shadow
    /// values, prop-site re-validation (§7.4).
    AiDirect,
    /// Argument Integrity extended-pointee probe (nested in `AiDirect`).
    AiExtended,
    /// Retry backoff stall charged after a failed substrate access.
    Backoff,
    /// Instant: one substrate-access retry attempt.
    Retry,
    /// Instant: Call-Type verdict served from the verification cache.
    CtCacheHit,
    /// Instant: stack-walk verdict served from the verification cache.
    WalkCacheHit,
    /// Instant: the trap was denied (a [`crate::DenyRecord`] exists).
    Deny,
}

impl Phase {
    /// Stable snake_case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Trap => "trap",
            Phase::SeccompClassify => "seccomp_classify",
            Phase::PrefilterCheck => "prefilter_check",
            Phase::PrefilterEscalate => "prefilter_escalate",
            Phase::GetRegs => "getregs",
            Phase::FrameRead => "frame_read",
            Phase::CtCheck => "ct_check",
            Phase::CfWalk => "cf_walk",
            Phase::AiDirect => "ai_direct",
            Phase::AiExtended => "ai_extended",
            Phase::Backoff => "backoff",
            Phase::Retry => "retry",
            Phase::CtCacheHit => "ct_cache_hit",
            Phase::WalkCacheHit => "walk_cache_hit",
            Phase::Deny => "deny",
        }
    }

    /// Which layer emits the phase (the Chrome-trace category).
    pub fn category(self) -> &'static str {
        match self {
            Phase::Trap
            | Phase::SeccompClassify
            | Phase::PrefilterCheck
            | Phase::PrefilterEscalate => "kernel",
            _ => "monitor",
        }
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Typed phase.
    pub phase: Phase,
    /// Monitor trap sequence number the event belongs to (0 = outside any
    /// trap).
    pub trap: u64,
    /// Deterministic monitor-time clock (the world's `trace_cycles`).
    pub vcycles: u64,
    /// Monotonic wall-clock nanoseconds since tracing was enabled.
    pub wall_ns: u64,
    /// Phase-specific payload (walk depth, retry attempt, deny flag, …).
    pub arg: u64,
}

impl TraceEvent {
    /// Builds an event, stamping the wall clock. Only called on the
    /// enabled path.
    pub(crate) fn new(kind: EventKind, phase: Phase, trap: u64, vcycles: u64, arg: u64) -> Self {
        TraceEvent {
            kind,
            phase,
            trap,
            vcycles,
            wall_ns: span_wall_ns(),
            arg,
        }
    }
}

thread_local! {
    static EPOCH: std::time::Instant = std::time::Instant::now();
}

/// Monotonic nanoseconds since this thread's telemetry epoch.
fn span_wall_ns() -> u64 {
    EPOCH.with(|e| e.elapsed().as_nanos() as u64)
}

/// Bounded, preallocated ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct SpanTracer {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write slot once the buffer is full (oldest event's index).
    next: usize,
    total: u64,
}

impl SpanTracer {
    /// Preallocates a ring holding up to `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        SpanTracer {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Records one event, overwriting the oldest when full. Never
    /// allocates: the ring was sized at construction.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Drains the ring, returning buffered events oldest first.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        let out = self.events();
        self.buf.clear();
        self.next = 0;
        out
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(phase: Phase, vcycles: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Instant,
            phase,
            trap: 1,
            vcycles,
            wall_ns: 0,
            arg: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut s = SpanTracer::new(4);
        for i in 0..10 {
            s.record(ev(Phase::Retry, i));
        }
        assert_eq!(s.total_recorded(), 10);
        let evs = s.take();
        assert_eq!(
            evs.iter().map(|e| e.vcycles).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert!(s.events().is_empty());
    }

    #[test]
    fn ring_never_exceeds_capacity() {
        let mut s = SpanTracer::new(3);
        for i in 0..100 {
            s.record(ev(Phase::Trap, i));
            assert!(s.events().len() <= 3);
        }
        assert_eq!(s.capacity(), 3);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Trap.name(), "trap");
        assert_eq!(Phase::CfWalk.name(), "cf_walk");
        assert_eq!(Phase::PrefilterCheck.name(), "prefilter_check");
        assert_eq!(Phase::PrefilterEscalate.name(), "prefilter_escalate");
        assert_eq!(Phase::Trap.category(), "kernel");
        assert_eq!(Phase::PrefilterCheck.category(), "kernel");
        assert_eq!(Phase::AiExtended.category(), "monitor");
    }
}
