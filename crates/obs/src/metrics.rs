//! The metrics registry: named counters and fixed-bucket histograms,
//! snapshotable as a plain serializable struct.
//!
//! Registration is lazy — the first `counter_add`/`observe` against a name
//! creates it — but histograms may also be registered up front with
//! explicit bucket bounds (cycles/trap wants coarser buckets than walk
//! depth). All storage is owned by the registry; recording allocates only
//! on first use of a name.

use crate::sketch::{QuantileSketch, SketchSnapshot};
use serde::Serialize;
use std::collections::BTreeMap;

/// Default histogram bucket upper edges: powers of two, 1..=65536.
pub const DEFAULT_BOUNDS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// Counter bumped by [`MetricsRegistry::merge`] whenever two same-named
/// histograms carried different bucket bounds — the merged distribution
/// credited the foreign observations to the overflow slot, so per-bucket
/// shape is no longer trustworthy for that name.
pub const BOUNDS_MISMATCH_COUNTER: &str = "obs.histogram_bounds_mismatch";

/// A fixed-bucket histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus a final overflow slot.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds another histogram into this one. Bucket counts add
    /// elementwise when the bounds agree (the fleet case: every worker
    /// registers the same bounds). With mismatched bounds the per-bucket
    /// placement is unrecoverable, so the other side's observations are
    /// folded into the aggregate stats and credited to the overflow slot
    /// — and the mismatch is reported back (`true`) so the registry can
    /// record it instead of silently corrupting the distribution.
    fn absorb(&mut self, other: &Histogram) -> bool {
        if other.count == 0 {
            return false;
        }
        let mismatched = self.bounds != other.bounds;
        if mismatched {
            *self.counts.last_mut().expect("overflow slot") += other.count;
        } else {
            for (slot, n) in self.counts.iter_mut().zip(other.counts.iter()) {
                *slot += n;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        mismatched
    }

    fn observe(&mut self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// Counters + histograms + quantile sketches for one thread of execution.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    sketches: BTreeMap<&'static str, QuantileSketch>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero on first use.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Registers a histogram with explicit ascending bucket bounds. A
    /// no-op if the name already exists (first registration wins, so
    /// explicit bounds must be declared before the first `observe`).
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[u64]) {
        self.hists
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records `value` into the named histogram, creating it with
    /// [`DEFAULT_BOUNDS`] on first use.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists
            .entry(name)
            .or_insert_with(|| Histogram::new(DEFAULT_BOUNDS))
            .observe(value);
    }

    /// Records `value` into the named quantile sketch, creating it on
    /// first use (sketches have no bounds to declare).
    pub fn sketch_observe(&mut self, name: &'static str, value: u64) {
        self.sketches.entry(name).or_default().observe(value);
    }

    /// Read access to a named sketch (percentile queries mid-run).
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches.get(name)
    }

    /// Merges another registry into this one: counters add, histograms
    /// fold elementwise when their bounds agree (see `Histogram::absorb`),
    /// sketches fold per log-bucket (always safe — the bucket mapping is
    /// global, not per-instance). The fleet runner uses this to stitch
    /// per-worker registries into one deterministic aggregate — merging in
    /// task order yields the same registry regardless of how tasks were
    /// scheduled across threads, because all maps are name-keyed and every
    /// operation commutes. A histogram pair with mismatched bounds bumps
    /// [`BOUNDS_MISMATCH_COUNTER`] instead of corrupting silently.
    pub fn merge(&mut self, other: MetricsRegistry) {
        for (name, value) in other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        let mut mismatches = 0u64;
        for (name, h) in other.hists {
            match self.hists.entry(name) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if e.get_mut().absorb(&h) {
                        mismatches += 1;
                    }
                }
            }
        }
        if mismatches > 0 {
            *self.counters.entry(BOUNDS_MISMATCH_COUNTER).or_insert(0) += mismatches;
        }
        for (name, s) in other.sketches {
            match self.sketches.entry(name) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(s);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&s),
            }
        }
    }

    /// Snapshots every counter and histogram into a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|(&name, h)| HistogramSnapshot {
                    name: name.to_string(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0 } else { h.min },
                    max: h.max,
                    buckets: h
                        .bounds
                        .iter()
                        .copied()
                        .chain(std::iter::once(u64::MAX))
                        .zip(h.counts.iter().copied())
                        .map(|(le, count)| BucketSnapshot { le, count })
                        .collect(),
                })
                .collect(),
            sketches: self
                .sketches
                .iter()
                .map(|(&name, s)| s.snapshot(name))
                .collect(),
        }
    }
}

/// One counter's value at snapshot time.
#[derive(Debug, Clone, Serialize)]
pub struct CounterSnapshot {
    /// Counter name (dotted, e.g. `monitor.retries`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram bucket: observations with `value <= le`.
#[derive(Debug, Clone, Serialize)]
pub struct BucketSnapshot {
    /// Upper edge (inclusive); `u64::MAX` marks the overflow bucket.
    pub le: u64,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Cumulative-style fixed buckets (non-cumulative counts per bucket).
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The whole registry as a plain struct (the metrics JSON dump).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// All quantile sketches, name-sorted.
    pub sketches: Vec<SketchSnapshot>,
}

impl MetricsSnapshot {
    /// Looks a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks a histogram up by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks a quantile sketch up by name.
    pub fn sketch(&self, name: &str) -> Option<&SketchSnapshot> {
        self.sketches.iter().find(|s| s.name == name)
    }

    /// Histogram merges that crossed mismatched bucket bounds (0 when the
    /// counter was never bumped) — surfaced in `bastion stats`.
    pub fn bounds_mismatches(&self) -> u64 {
        self.counter(BOUNDS_MISMATCH_COUNTER).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(5));
        assert_eq!(s.counter("b"), Some(1));
        assert_eq!(s.counter("c"), None);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("d", &[1, 4, 16]);
        r.observe("d", 1);
        r.observe("d", 3);
        r.observe("d", 100);
        let s = r.snapshot();
        let h = s.histogram("d").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 104);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 1, 0, 1]);
        assert_eq!(h.buckets.last().unwrap().le, u64::MAX);
        assert!((h.mean() - 104.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters_and_folds_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("shared", 2);
        a.counter_add("only_a", 1);
        a.register_histogram("h", &[1, 4, 16]);
        a.observe("h", 1);
        a.observe("h", 100);
        let mut b = MetricsRegistry::new();
        b.counter_add("shared", 5);
        b.counter_add("only_b", 7);
        b.register_histogram("h", &[1, 4, 16]);
        b.observe("h", 3);
        b.observe("only_b_hist", 2);
        a.merge(b);
        let s = a.snapshot();
        assert_eq!(s.counter("shared"), Some(7));
        assert_eq!(s.counter("only_a"), Some(1));
        assert_eq!(s.counter("only_b"), Some(7));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 104);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 1, 0, 1]);
        assert_eq!(s.histogram("only_b_hist").unwrap().count, 1);
    }

    #[test]
    fn merge_mismatched_bounds_keeps_aggregates() {
        let mut a = MetricsRegistry::new();
        a.register_histogram("h", &[10]);
        a.observe("h", 5);
        let mut b = MetricsRegistry::new();
        b.register_histogram("h", &[1, 2]);
        b.observe("h", 1);
        b.observe("h", 9);
        a.merge(b);
        let s = a.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 9);
        // Foreign-bounds observations land in the overflow slot.
        assert_eq!(h.buckets.last().unwrap().count, 2);
    }

    #[test]
    fn merge_mismatched_bounds_is_counted() {
        let mut a = MetricsRegistry::new();
        a.register_histogram("h", &[10]);
        a.observe("h", 5);
        a.register_histogram("k", &[10]);
        a.observe("k", 5);
        let mut b = MetricsRegistry::new();
        b.register_histogram("h", &[1, 2]);
        b.observe("h", 9);
        b.register_histogram("k", &[10]);
        b.observe("k", 9);
        a.merge(b);
        let s = a.snapshot();
        // One of the two merges crossed bounds; exactly one is recorded.
        assert_eq!(s.bounds_mismatches(), 1);
        assert_eq!(s.counter(BOUNDS_MISMATCH_COUNTER), Some(1));
        // A clean merge leaves the counter untouched (no counter at all).
        let mut c = MetricsRegistry::new();
        c.register_histogram("k", &[10]);
        c.observe("k", 1);
        let mut d = MetricsRegistry::new();
        d.register_histogram("k", &[10]);
        d.observe("k", 2);
        c.merge(d);
        assert_eq!(c.snapshot().bounds_mismatches(), 0);
        // Empty-on-mismatched-bounds is also clean: nothing was credited
        // to the overflow slot, so nothing is reported.
        let mut e = MetricsRegistry::new();
        e.register_histogram("h", &[10]);
        let mut f = MetricsRegistry::new();
        f.register_histogram("h", &[1, 2]);
        e.merge(f);
        assert_eq!(e.snapshot().bounds_mismatches(), 0);
    }

    #[test]
    fn sketches_register_merge_and_snapshot() {
        let mut a = MetricsRegistry::new();
        for v in [10u64, 20, 3000] {
            a.sketch_observe("lat", v);
        }
        let mut b = MetricsRegistry::new();
        b.sketch_observe("lat", 40);
        b.sketch_observe("other", 7);
        a.merge(b);
        let s = a.snapshot();
        let lat = s.sketch("lat").unwrap();
        assert_eq!(lat.count, 4);
        assert_eq!(lat.min, 10);
        assert!(lat.p999 >= lat.p50);
        assert_eq!(s.sketch("other").unwrap().count, 1);
        assert!(a.sketch("lat").is_some());
        // Single-stream equivalence of the merged registry sketch.
        let mut single = MetricsRegistry::new();
        for v in [10u64, 20, 3000, 40] {
            single.sketch_observe("lat", v);
        }
        assert_eq!(
            serde_json::to_string(lat).unwrap(),
            serde_json::to_string(single.snapshot().sketch("lat").unwrap()).unwrap()
        );
    }

    #[test]
    fn merge_order_is_immaterial() {
        let build = |vals: &[u64]| {
            let mut r = MetricsRegistry::new();
            for &v in vals {
                r.counter_add("c", v);
                r.observe("h", v);
            }
            r
        };
        let mut ab = build(&[1, 2]);
        ab.merge(build(&[30, 40]));
        let mut ba = build(&[30, 40]);
        ba.merge(build(&[1, 2]));
        assert_eq!(
            serde_json::to_string(&ab.snapshot()).unwrap(),
            serde_json::to_string(&ba.snapshot()).unwrap()
        );
    }

    #[test]
    fn default_bounds_kick_in() {
        let mut r = MetricsRegistry::new();
        r.observe("x", 7000);
        let s = r.snapshot();
        let h = s.histogram("x").unwrap();
        assert_eq!(h.buckets.len(), DEFAULT_BOUNDS.len() + 1);
        assert_eq!(h.count, 1);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("e", &[1]);
        let s = r.snapshot();
        assert_eq!(s.histogram("e").unwrap().min, 0);
        // The sentinel must not escape through serialization either (the
        // overflow bucket's `le` is the only legitimate u64::MAX).
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            json.contains("\"min\":0"),
            "serialized min must be normalized to 0: {json}"
        );
        assert!(!json.contains(&format!("\"min\":{}", u64::MAX)));
        // ...nor through a merge chain of empty histograms.
        let mut other = MetricsRegistry::new();
        other.register_histogram("e", &[1]);
        r.merge(other);
        assert_eq!(r.snapshot().histogram("e").unwrap().min, 0);
    }

    #[test]
    fn snapshot_serializes() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", 1);
        r.observe("h", 2);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
    }
}
