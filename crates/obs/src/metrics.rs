//! The metrics registry: named counters and fixed-bucket histograms,
//! snapshotable as a plain serializable struct.
//!
//! Registration is lazy — the first `counter_add`/`observe` against a name
//! creates it — but histograms may also be registered up front with
//! explicit bucket bounds (cycles/trap wants coarser buckets than walk
//! depth). All storage is owned by the registry; recording allocates only
//! on first use of a name.

use serde::Serialize;
use std::collections::BTreeMap;

/// Default histogram bucket upper edges: powers of two, 1..=65536.
pub const DEFAULT_BOUNDS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// A fixed-bucket histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus a final overflow slot.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds another histogram into this one. Bucket counts add
    /// elementwise when the bounds agree (the fleet case: every worker
    /// registers the same bounds). With mismatched bounds the per-bucket
    /// placement is unrecoverable, so the other side's observations are
    /// folded into the aggregate stats and credited to the overflow slot.
    fn absorb(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.bounds == other.bounds {
            for (slot, n) in self.counts.iter_mut().zip(other.counts.iter()) {
                *slot += n;
            }
        } else {
            *self.counts.last_mut().expect("overflow slot") += other.count;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn observe(&mut self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// Counters + histograms for one thread of execution.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero on first use.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Registers a histogram with explicit ascending bucket bounds. A
    /// no-op if the name already exists (first registration wins, so
    /// explicit bounds must be declared before the first `observe`).
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[u64]) {
        self.hists
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records `value` into the named histogram, creating it with
    /// [`DEFAULT_BOUNDS`] on first use.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists
            .entry(name)
            .or_insert_with(|| Histogram::new(DEFAULT_BOUNDS))
            .observe(value);
    }

    /// Merges another registry into this one: counters add, histograms
    /// fold elementwise when their bounds agree (see `Histogram::absorb`).
    /// The fleet runner uses this to stitch per-worker registries into one
    /// deterministic aggregate — merging in task order yields the same
    /// registry regardless of how tasks were scheduled across threads,
    /// because both maps are name-keyed and every operation commutes.
    pub fn merge(&mut self, other: MetricsRegistry) {
        for (name, value) in other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, h) in other.hists {
            match self.hists.entry(name) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().absorb(&h),
            }
        }
    }

    /// Snapshots every counter and histogram into a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|(&name, h)| HistogramSnapshot {
                    name: name.to_string(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0 } else { h.min },
                    max: h.max,
                    buckets: h
                        .bounds
                        .iter()
                        .copied()
                        .chain(std::iter::once(u64::MAX))
                        .zip(h.counts.iter().copied())
                        .map(|(le, count)| BucketSnapshot { le, count })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One counter's value at snapshot time.
#[derive(Debug, Clone, Serialize)]
pub struct CounterSnapshot {
    /// Counter name (dotted, e.g. `monitor.retries`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram bucket: observations with `value <= le`.
#[derive(Debug, Clone, Serialize)]
pub struct BucketSnapshot {
    /// Upper edge (inclusive); `u64::MAX` marks the overflow bucket.
    pub le: u64,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Cumulative-style fixed buckets (non-cumulative counts per bucket).
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The whole registry as a plain struct (the metrics JSON dump).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks a histogram up by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(5));
        assert_eq!(s.counter("b"), Some(1));
        assert_eq!(s.counter("c"), None);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("d", &[1, 4, 16]);
        r.observe("d", 1);
        r.observe("d", 3);
        r.observe("d", 100);
        let s = r.snapshot();
        let h = s.histogram("d").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 104);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 1, 0, 1]);
        assert_eq!(h.buckets.last().unwrap().le, u64::MAX);
        assert!((h.mean() - 104.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters_and_folds_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("shared", 2);
        a.counter_add("only_a", 1);
        a.register_histogram("h", &[1, 4, 16]);
        a.observe("h", 1);
        a.observe("h", 100);
        let mut b = MetricsRegistry::new();
        b.counter_add("shared", 5);
        b.counter_add("only_b", 7);
        b.register_histogram("h", &[1, 4, 16]);
        b.observe("h", 3);
        b.observe("only_b_hist", 2);
        a.merge(b);
        let s = a.snapshot();
        assert_eq!(s.counter("shared"), Some(7));
        assert_eq!(s.counter("only_a"), Some(1));
        assert_eq!(s.counter("only_b"), Some(7));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 104);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 1, 0, 1]);
        assert_eq!(s.histogram("only_b_hist").unwrap().count, 1);
    }

    #[test]
    fn merge_mismatched_bounds_keeps_aggregates() {
        let mut a = MetricsRegistry::new();
        a.register_histogram("h", &[10]);
        a.observe("h", 5);
        let mut b = MetricsRegistry::new();
        b.register_histogram("h", &[1, 2]);
        b.observe("h", 1);
        b.observe("h", 9);
        a.merge(b);
        let s = a.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 9);
        // Foreign-bounds observations land in the overflow slot.
        assert_eq!(h.buckets.last().unwrap().count, 2);
    }

    #[test]
    fn merge_order_is_immaterial() {
        let build = |vals: &[u64]| {
            let mut r = MetricsRegistry::new();
            for &v in vals {
                r.counter_add("c", v);
                r.observe("h", v);
            }
            r
        };
        let mut ab = build(&[1, 2]);
        ab.merge(build(&[30, 40]));
        let mut ba = build(&[30, 40]);
        ba.merge(build(&[1, 2]));
        assert_eq!(
            serde_json::to_string(&ab.snapshot()).unwrap(),
            serde_json::to_string(&ba.snapshot()).unwrap()
        );
    }

    #[test]
    fn default_bounds_kick_in() {
        let mut r = MetricsRegistry::new();
        r.observe("x", 7000);
        let s = r.snapshot();
        let h = s.histogram("x").unwrap();
        assert_eq!(h.buckets.len(), DEFAULT_BOUNDS.len() + 1);
        assert_eq!(h.count, 1);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("e", &[1]);
        let s = r.snapshot();
        assert_eq!(s.histogram("e").unwrap().min, 0);
    }

    #[test]
    fn snapshot_serializes() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", 1);
        r.observe("h", 2);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
    }
}
