//! Always-on flight recorder: a bounded ring of compact per-trap
//! summaries, dumped when something goes wrong.
//!
//! Post-hoc span tracing (`bastion trace`) answers "what did this run
//! do", but only when telemetry was enabled up front. *SFP* (PAPERS.md)
//! shows fault-induced denies are only diagnosable with the state
//! *leading up to* the violation — so the kernel records a few words per
//! trap into this ring unconditionally: syscall number, verification
//! tier, verdict, escalation-reason code, charged virtual cycles, and
//! the prefilter's flow-automaton word. Recording is host-side memory
//! writes only; **zero virtual cycles** are ever charged, so clean-path
//! cycle counts stay byte-identical with the recorder running (the
//! `obs_smoke` CI gate re-proves this against `BENCH_interp.json`).
//!
//! The ring is dumped and joined to its [`crate::DenyRecord`] on every
//! deny, and captured as a labelled [`FlightDump`] on ladder-rung
//! transitions and tier-1 escalation bursts. The instance lives in the
//! simulated kernel's `World` (not a thread-local) so fleet workers,
//! checkpoint forks, and warm/cold chaos cells all see per-world,
//! schedule-independent contents — the same determinism contract as the
//! metrics registry.

use serde::{Deserialize, Serialize};

/// Default ring capacity: enough context to read the run-up to a deny
/// without bloating `WorldSnapshot` checkpoints.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 16;

/// Verdict byte of a [`FlightEntry`].
pub mod verdict {
    /// Trap allowed (either tier).
    pub const ALLOW: u8 = 0;
    /// Trap denied by the monitor.
    pub const DENY: u8 = 1;
    /// Trap entered tier 2 and the verdict is not in yet (the in-flight
    /// entry a deny dump captures for the trap being denied).
    pub const PENDING: u8 = 2;
}

/// One compact per-trap summary — a few machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEntry {
    /// World trap ordinal (1-based), the join key against
    /// [`crate::DenyRecord::trap_seq`] and the fault log.
    pub trap: u64,
    /// Trapped syscall number.
    pub sysno: u32,
    /// Verification tier that settled the trap: 1 = seccomp-time
    /// prefilter allow, 2 = full monitor stop.
    pub tier: u8,
    /// One of [`verdict`]'s codes.
    pub verdict: u8,
    /// `EscalateReason::code()` that sent the trap to tier 2
    /// (`u8::MAX` for tier-1 allows — nothing escalated).
    pub esc: u8,
    /// Virtual cycles charged to this trap's verification.
    pub vcycles: u64,
    /// The prefilter's flow-automaton state word for the trapping pid at
    /// classify time (0 when no prefilter tracks this pid).
    pub flow: u64,
}

/// Why a [`FlightDump`] was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightTrigger {
    /// The monitor's resilience ladder changed rungs.
    LadderRung,
    /// A burst of tier-1 escalations (possible probe/attack churn).
    EscalationBurst,
}

impl FlightTrigger {
    /// Stable snake_case label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlightTrigger::LadderRung => "ladder_rung",
            FlightTrigger::EscalationBurst => "escalation_burst",
        }
    }
}

/// A captured ring dump with the trap that triggered it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightDump {
    /// What tripped the capture.
    pub trigger: FlightTrigger,
    /// World trap ordinal at capture time.
    pub trap: u64,
    /// Ring contents, oldest first (the triggering trap is last).
    pub entries: Vec<FlightEntry>,
}

/// The bounded ring. Preallocated at construction; recording after
/// warm-up never allocates, mirroring `SpanTracer`'s ring discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    entries: Vec<FlightEntry>,
    cap: usize,
    /// Slot the next record overwrites once the ring is full.
    next: usize,
    /// Total records ever made (can exceed `cap`).
    total: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A ring holding the most recent `capacity` entries (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder {
            entries: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Records one entry, overwriting the oldest when full. Returns the
    /// slot index so the caller can [`FlightRecorder::finalize`] the same
    /// entry once the verdict is in.
    pub fn record(&mut self, entry: FlightEntry) -> usize {
        self.total += 1;
        if self.entries.len() < self.cap {
            self.entries.push(entry);
            self.entries.len() - 1
        } else {
            let slot = self.next;
            self.entries[slot] = entry;
            self.next = (self.next + 1) % self.cap;
            slot
        }
    }

    /// Settles a previously recorded in-flight entry: final verdict and
    /// the cycles the trap ended up costing.
    pub fn finalize(&mut self, slot: usize, verdict: u8, vcycles: u64) {
        if let Some(e) = self.entries.get_mut(slot) {
            e.verdict = verdict;
            e.vcycles = vcycles;
        }
    }

    /// Ring contents, oldest first. Non-destructive — a dump is a copy,
    /// the ring keeps rolling.
    #[must_use]
    pub fn dump(&self) -> Vec<FlightEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(&self.entries[self.next..]);
        out.extend_from_slice(&self.entries[..self.next]);
        out
    }

    /// Total entries ever recorded.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trap: u64) -> FlightEntry {
        FlightEntry {
            trap,
            sysno: 1,
            tier: 1,
            verdict: verdict::ALLOW,
            esc: u8::MAX,
            vcycles: 10 * trap,
            flow: trap,
        }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut r = FlightRecorder::new(4);
        for t in 1..=10 {
            r.record(entry(t));
        }
        let d = r.dump();
        assert_eq!(d.iter().map(|e| e.trap).collect::<Vec<_>>(), [7, 8, 9, 10]);
        assert_eq!(r.total_recorded(), 10);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn partial_ring_dumps_in_insertion_order() {
        let mut r = FlightRecorder::new(8);
        r.record(entry(1));
        r.record(entry(2));
        assert_eq!(r.dump().iter().map(|e| e.trap).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn finalize_settles_the_inflight_entry() {
        let mut r = FlightRecorder::new(2);
        let mut e = entry(1);
        e.verdict = verdict::PENDING;
        e.vcycles = 0;
        let slot = r.record(e);
        r.finalize(slot, verdict::DENY, 777);
        let d = r.dump();
        assert_eq!(d[0].verdict, verdict::DENY);
        assert_eq!(d[0].vcycles, 777);
    }

    #[test]
    fn dump_is_nondestructive_and_serializable() {
        let mut r = FlightRecorder::new(3);
        r.record(entry(1));
        let before = r.dump();
        assert_eq!(r.dump(), before);
        let dump = FlightDump {
            trigger: FlightTrigger::EscalationBurst,
            trap: 1,
            entries: before,
        };
        let json = serde_json::to_string(&dump).unwrap();
        assert!(json.contains("\"trigger\""), "{json}");
        assert_eq!(FlightTrigger::LadderRung.label(), "ladder_rung");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRecorder::new(0);
        r.record(entry(1));
        r.record(entry(2));
        assert_eq!(r.dump().len(), 1);
        assert_eq!(r.dump()[0].trap, 2);
    }
}
