//! The deny-provenance audit log: structured records for every monitor
//! deny, replacing the stringly `deny(...)` path.
//!
//! A [`DenyRecord`] captures *why* a trap was denied at rule granularity —
//! which context fired, which specific rule within it, the expected vs
//! observed values where the rule compares two quantities, and the
//! resilience state (retries, strikes, ladder rung) the monitor was in.
//! [`DenyRecord::render`] reproduces the legacy kill-reason string
//! byte-for-byte, so everything keyed on those strings (attack-outcome
//! classification, test assertions) is unaffected.

use serde::Serialize;

/// Which context denied — mirrors the monitor's `ContextKind` without
/// depending on the monitor crate (obs sits below it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DenyContext {
    /// Call-Type context (§7.2).
    CallType,
    /// Control-Flow context (§7.3).
    ControlFlow,
    /// Argument Integrity context (§7.4).
    ArgIntegrity,
    /// The monitor's own substrate failed; fail-closed policy denied.
    FailClosed,
}

impl DenyContext {
    /// Short label used in kill reasons ("CT", "CF", "AI", "FC").
    pub fn label(self) -> &'static str {
        match self {
            DenyContext::CallType => "CT",
            DenyContext::ControlFlow => "CF",
            DenyContext::ArgIntegrity => "AI",
            DenyContext::FailClosed => "FC",
        }
    }
}

/// Rule-level provenance: the specific check that fired, one variant per
/// deny site in the verification pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DenyRule {
    // ---- Call-Type (§7.2) ----
    /// Trap `rip` resolved to no known function.
    RipOutsideKnownCode,
    /// The stub frame head could not be read (CT needs the callsite).
    StackUnreadable,
    /// The syscall number has no call-type classification at all.
    NoCallTypeEntry,
    /// The syscall is classified not-callable.
    NotCallable,
    /// Direct call to a syscall not classified directly-callable.
    NotDirectlyCallable,
    /// Indirect call to a syscall not classified indirectly-callable.
    NotIndirectlyCallable,
    /// No call instruction precedes the return address.
    NoCallInstruction,
    // ---- Control-Flow (§7.3) ----
    /// A frame head in the walk could not be read.
    FrameUnreadable,
    /// A saved frame pointer could not be read (legacy walk).
    SavedFpUnreadable,
    /// The walk bottomed out in a function other than `main`.
    BottomNotMain,
    /// A cached/malformed chain bottomed out with no frames at all.
    BottomEmptyChain,
    /// A return address is not preceded by any known call instruction.
    ReturnNotAfterCall,
    /// A frame was entered indirectly but its function is not a permitted
    /// indirect entry.
    IllegalIndirectEntry,
    /// A direct callsite's target disagrees with the unwound callee.
    CalleeMismatch,
    /// A callsite is not in the callee's valid-caller set.
    InvalidCaller,
    /// A chain frame references a callsite unknown to metadata.
    UnknownChainCallsite,
    /// The 128-frame unwind limit was exceeded.
    DepthLimitExceeded,
    // ---- Argument Integrity (§7.4) ----
    /// A checked shadow read faulted.
    ShadowReadFault,
    /// A shadow entry failed its integrity checksum (table quarantined).
    ShadowCorrupt,
    /// The shadow table is quarantined; AI is unverifiable.
    ShadowQuarantined,
    /// The trapped syscall frame has no callsite to key metadata on.
    NoSyscallCallsite,
    /// A sensitive syscall arrived from a site not in the metadata.
    UnlistedSyscallSite,
    /// The trapped syscall number disagrees with the site's registration.
    SysnoMismatch,
    /// An argument register disagrees with its expected constant.
    ConstArgMismatch,
    /// A bound variable has no shadow copy.
    NoShadowCopy,
    /// An argument register disagrees with the shadow value.
    ShadowValueMismatch,
    /// The bound variable's memory was corrupted after binding (TOCTOU).
    CorruptedAfterBind,
    /// An argument register disagrees with a bound constant.
    BoundConstMismatch,
    /// No binding exists for an argument position that requires one.
    BindingMissing,
    /// An extended-argument pointee could not be read.
    PointeeUnreadable,
    /// A shadow-backed pointee byte disagrees with its shadow entry.
    PointeeByteCorrupted,
    /// Shadow-backed pointee bytes past the readable window escaped
    /// verification.
    PointeeTailUnverifiable,
    /// An extended-argument pointee ran off the end of its mapping with no
    /// terminator inside the readable window.
    PointeeRunsOffMapping,
    /// A bound variable's current memory could not be read.
    BoundVarUnreadable,
    /// A bound sensitive variable up-stack disagrees with its shadow copy.
    SensitiveVarCorrupted,
    /// A propagation site is missing its memory binding.
    MissingMemBinding,
    /// A spilled parameter slot could not be read.
    ParamSlotUnreadable,
    /// A spilled constant parameter was corrupted.
    ConstParamCorrupted,
    /// A global-symbol argument references an unknown symbol.
    UnknownSymbol,
    /// An argument does not point at the expected global.
    GlobalAddrMismatch,
    /// The pointee of a global-symbol argument was corrupted.
    GlobalPointeeCorrupted,
    /// A stack-address argument lies outside the plausible stack range.
    StackAddrImplausible,
    // ---- Fail-Closed (substrate) ----
    /// Registers unreadable after retries.
    RegsUnreadable,
    /// Per-trap verification deadline exceeded.
    WatchdogDeadline,
    /// Degraded ladder rung: CF/AI-configured traps denied.
    DegradedMode,
    /// Fail-closed ladder rung: every trap denied.
    FailClosedMode,
}

impl DenyRule {
    /// Stable snake_case rule name for exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            DenyRule::RipOutsideKnownCode => "rip_outside_known_code",
            DenyRule::StackUnreadable => "stack_unreadable",
            DenyRule::NoCallTypeEntry => "no_call_type_entry",
            DenyRule::NotCallable => "not_callable",
            DenyRule::NotDirectlyCallable => "not_directly_callable",
            DenyRule::NotIndirectlyCallable => "not_indirectly_callable",
            DenyRule::NoCallInstruction => "no_call_instruction",
            DenyRule::FrameUnreadable => "frame_unreadable",
            DenyRule::SavedFpUnreadable => "saved_fp_unreadable",
            DenyRule::BottomNotMain => "bottom_not_main",
            DenyRule::BottomEmptyChain => "bottom_empty_chain",
            DenyRule::ReturnNotAfterCall => "return_not_after_call",
            DenyRule::IllegalIndirectEntry => "illegal_indirect_entry",
            DenyRule::CalleeMismatch => "callee_mismatch",
            DenyRule::InvalidCaller => "invalid_caller",
            DenyRule::UnknownChainCallsite => "unknown_chain_callsite",
            DenyRule::DepthLimitExceeded => "depth_limit_exceeded",
            DenyRule::ShadowReadFault => "shadow_read_fault",
            DenyRule::ShadowCorrupt => "shadow_corrupt",
            DenyRule::ShadowQuarantined => "shadow_quarantined",
            DenyRule::NoSyscallCallsite => "no_syscall_callsite",
            DenyRule::UnlistedSyscallSite => "unlisted_syscall_site",
            DenyRule::SysnoMismatch => "sysno_mismatch",
            DenyRule::ConstArgMismatch => "const_arg_mismatch",
            DenyRule::NoShadowCopy => "no_shadow_copy",
            DenyRule::ShadowValueMismatch => "shadow_value_mismatch",
            DenyRule::CorruptedAfterBind => "corrupted_after_bind",
            DenyRule::BoundConstMismatch => "bound_const_mismatch",
            DenyRule::BindingMissing => "binding_missing",
            DenyRule::PointeeUnreadable => "pointee_unreadable",
            DenyRule::PointeeByteCorrupted => "pointee_byte_corrupted",
            DenyRule::PointeeTailUnverifiable => "pointee_tail_unverifiable",
            DenyRule::PointeeRunsOffMapping => "pointee_runs_off_mapping",
            DenyRule::BoundVarUnreadable => "bound_var_unreadable",
            DenyRule::SensitiveVarCorrupted => "sensitive_var_corrupted",
            DenyRule::MissingMemBinding => "missing_mem_binding",
            DenyRule::ParamSlotUnreadable => "param_slot_unreadable",
            DenyRule::ConstParamCorrupted => "const_param_corrupted",
            DenyRule::UnknownSymbol => "unknown_symbol",
            DenyRule::GlobalAddrMismatch => "global_addr_mismatch",
            DenyRule::GlobalPointeeCorrupted => "global_pointee_corrupted",
            DenyRule::StackAddrImplausible => "stack_addr_implausible",
            DenyRule::RegsUnreadable => "regs_unreadable",
            DenyRule::WatchdogDeadline => "watchdog_deadline",
            DenyRule::DegradedMode => "degraded_mode",
            DenyRule::FailClosedMode => "fail_closed_mode",
        }
    }
}

/// The monitor's resilience state at deny time — lets chaos assertions
/// distinguish a deny caused by substrate trouble from a clean context
/// violation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultCtx {
    /// Substrate-access retries performed so far in the run.
    pub retries: u64,
    /// Substrate strikes accumulated (the ladder driver).
    pub strikes: u64,
    /// Watchdog overruns observed.
    pub watchdog_overruns: u64,
    /// Whether the shadow table is quarantined.
    pub shadow_quarantined: bool,
}

/// One structured deny: everything the legacy kill-reason string encoded,
/// plus rule-level provenance and resilience context.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DenyRecord {
    /// Monitor trap sequence number (1-based; joins with the kernel
    /// fault log's `world_trap`).
    pub trap_seq: u64,
    /// Trapped syscall number (0 when registers were never readable).
    pub sysno: u32,
    /// Which context denied.
    pub context: DenyContext,
    /// The specific rule that fired.
    pub rule: DenyRule,
    /// Expected value, for rules comparing two quantities.
    pub expected: Option<u64>,
    /// Observed value, for rules comparing two quantities.
    pub observed: Option<u64>,
    /// Resilience state at deny time.
    pub fault_ctx: FaultCtx,
    /// Degradation-ladder rung at deny time ("full"/"degraded"/
    /// "fail-closed").
    pub ladder_rung: String,
    /// The legacy message body (everything after the "CT: " prefix).
    pub message: String,
    /// Flight-recorder dump joined at deny time: the per-trap summaries
    /// leading up to (and including, in-flight) the denied trap, oldest
    /// first. Empty only for records built before the recorder existed
    /// (tests) or denies outside a world (none today).
    pub flight: Vec<crate::flight::FlightEntry>,
}

impl DenyRecord {
    /// Renders the legacy kill-reason string, byte-identical to the
    /// pre-structured `deny(...)` output.
    pub fn render(&self) -> String {
        format!("{}: {}", self.context.label(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_legacy_format() {
        let rec = DenyRecord {
            trap_seq: 3,
            sysno: 105,
            context: DenyContext::ArgIntegrity,
            rule: DenyRule::ShadowValueMismatch,
            expected: Some(0),
            observed: Some(0xdead),
            fault_ctx: FaultCtx::default(),
            ladder_rung: "full".into(),
            message: "argument 1: 0xdead != shadow value 0x0".into(),
            flight: Vec::new(),
        };
        assert_eq!(rec.render(), "AI: argument 1: 0xdead != shadow value 0x0");
    }

    #[test]
    fn labels_cover_all_contexts() {
        assert_eq!(DenyContext::CallType.label(), "CT");
        assert_eq!(DenyContext::ControlFlow.label(), "CF");
        assert_eq!(DenyContext::ArgIntegrity.label(), "AI");
        assert_eq!(DenyContext::FailClosed.label(), "FC");
    }

    #[test]
    fn rule_names_are_snake_case() {
        assert_eq!(DenyRule::NotCallable.name(), "not_callable");
        assert_eq!(DenyRule::WatchdogDeadline.name(), "watchdog_deadline");
    }

    #[test]
    fn record_serializes() {
        let rec = DenyRecord {
            trap_seq: 1,
            sysno: 59,
            context: DenyContext::CallType,
            rule: DenyRule::NotCallable,
            expected: None,
            observed: None,
            fault_ctx: FaultCtx::default(),
            ladder_rung: "full".into(),
            message: "syscall 59 is not-callable".into(),
            flight: Vec::new(),
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"trap_seq\""));
        assert!(json.contains("NotCallable"));
    }
}
