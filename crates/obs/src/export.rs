//! Exporters: Chrome `trace_event` JSON for the span ring, plus phase
//! aggregation shared by the CLI, bench bins, and the smoke test.
//!
//! The exporter re-balances the event stream before emitting it: a ring
//! that wrapped mid-span leaves orphaned `End` events at the front (their
//! `Begin` was overwritten) and unclosed `Begin` events at the back.
//! Orphaned ends are dropped and dangling begins are closed at the final
//! timestamp, so the exported JSON always contains balanced B/E pairs with
//! monotone timestamps — the shape [`validate_chrome_trace`] checks.

use crate::metrics::MetricsSnapshot;
use crate::span::{EventKind, Phase, TraceEvent};
use serde::{DeError, Deserialize, Serialize, Value};

/// Pass-through wrapper so a hand-built [`Value`] tree can flow through
/// the serde_json shim in both directions.
struct RawValue(Value);

impl Serialize for RawValue {
    fn serialize_value(&self) -> Value {
        self.0.clone()
    }
}

impl Deserialize for RawValue {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(RawValue(v.clone()))
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders events as a Chrome `trace_event` JSON document (load it at
/// `chrome://tracing` or in Perfetto). Timestamps are the deterministic
/// virtual-cycle clock, one microsecond per cycle.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_parts(&[(1, events)])
}

/// Renders several per-worker event streams as one Chrome trace document,
/// one `tid` lane per part. Each part is balanced independently (its own
/// LIFO stack and final timestamp), then emitted in part order — so the
/// stitched document is a deterministic function of the parts alone, no
/// matter how the workers that produced them were scheduled. Timestamps
/// are monotone *within* a `tid`, which is all the trace viewers (and
/// [`validate_chrome_trace`]) require.
pub fn chrome_trace_json_parts(parts: &[(u64, &[TraceEvent])]) -> String {
    let mut out: Vec<Value> = Vec::new();
    for &(tid, events) in parts {
        let mut stack: Vec<Phase> = Vec::new();
        let mut last_ts = 0u64;
        for ev in events {
            last_ts = ev.vcycles;
            match ev.kind {
                EventKind::Begin => {
                    stack.push(ev.phase);
                    out.push(trace_obj(ev, "B", tid));
                }
                EventKind::End => {
                    // Only a LIFO match closes a span; anything else is an
                    // orphan from ring wraparound and is dropped.
                    if stack.last() == Some(&ev.phase) {
                        stack.pop();
                        out.push(trace_obj(ev, "E", tid));
                    }
                }
                EventKind::Instant => out.push(trace_obj(ev, "i", tid)),
            }
        }
        // Close dangling spans (innermost first) at the final timestamp.
        while let Some(phase) = stack.pop() {
            let synth = TraceEvent {
                kind: EventKind::End,
                phase,
                trap: 0,
                vcycles: last_ts,
                wall_ns: 0,
                arg: 0,
            };
            out.push(trace_obj(&synth, "E", tid));
        }
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&RawValue(doc)).expect("trace document serializes")
}

fn trace_obj(ev: &TraceEvent, ph: &str, tid: u64) -> Value {
    let mut fields = vec![
        ("name", Value::Str(ev.phase.name().to_string())),
        ("cat", Value::Str(ev.phase.category().to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("ts", Value::UInt(ev.vcycles)),
        ("pid", Value::UInt(1)),
        ("tid", Value::UInt(tid)),
    ];
    if ph == "i" {
        fields.push(("s", Value::Str("t".to_string())));
    }
    fields.push((
        "args",
        obj(vec![
            ("trap", Value::UInt(ev.trap)),
            ("arg", Value::UInt(ev.arg)),
            ("wall_ns", Value::UInt(ev.wall_ns)),
        ]),
    ));
    obj(fields)
}

/// Shape summary of a validated Chrome trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceShape {
    /// Total `traceEvents` entries.
    pub events: u64,
    /// `"B"` events (equals `ends` in a valid trace).
    pub begins: u64,
    /// `"E"` events.
    pub ends: u64,
    /// `"i"` events.
    pub instants: u64,
    /// Matched begin/end pairs named `trap` (root spans).
    pub trap_spans: u64,
    /// Deepest span nesting observed (on any single `tid` lane).
    pub max_depth: u64,
    /// Distinct `tid` lanes seen (1 for a single-worker trace).
    pub tids: u64,
}

/// Validates Chrome-trace JSON shape: parseable, and — independently per
/// `tid` lane (missing `tid` defaults to 1) — monotone (non-decreasing)
/// timestamps and balanced B/E events with LIFO name nesting. A stitched
/// multi-worker trace is exactly several valid single-worker lanes in one
/// document. Returns the shape summary on success.
pub fn validate_chrome_trace(json: &str) -> Result<TraceShape, String> {
    use std::collections::BTreeMap;
    let raw: RawValue = serde_json::from_str(json).map_err(|e| format!("parse: {e}"))?;
    let events = match raw.0.field("traceEvents") {
        Ok(Value::Array(items)) => items.clone(),
        Ok(other) => return Err(format!("traceEvents is {}, not array", other.kind())),
        Err(e) => return Err(e.to_string()),
    };
    let mut shape = TraceShape::default();
    // Per-tid lane state: (open-span stack, last timestamp).
    let mut lanes: BTreeMap<u64, (Vec<String>, Option<u64>)> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let name = match ev.field("name") {
            Ok(Value::Str(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing string `name`")),
        };
        let ph = match ev.field("ph") {
            Ok(Value::Str(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing string `ph`")),
        };
        let ts = match ev.field("ts") {
            Ok(Value::UInt(v)) => *v,
            Ok(Value::Int(v)) if *v >= 0 => *v as u64,
            _ => return Err(format!("event {i}: missing integer `ts`")),
        };
        let tid = match ev.field("tid") {
            Ok(Value::UInt(v)) => *v,
            Ok(Value::Int(v)) if *v >= 0 => *v as u64,
            _ => 1,
        };
        let (stack, last_ts) = lanes.entry(tid).or_default();
        if let Some(prev) = *last_ts {
            if ts < prev {
                return Err(format!(
                    "event {i}: tid {tid} timestamp {ts} < predecessor {prev}"
                ));
            }
        }
        *last_ts = Some(ts);
        shape.events += 1;
        match ph.as_str() {
            "B" => {
                stack.push(name);
                shape.begins += 1;
                shape.max_depth = shape.max_depth.max(stack.len() as u64);
            }
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: `E` with no open span on tid {tid}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: `E` for `{name}` but `{open}` is open on tid {tid}"
                    ));
                }
                shape.ends += 1;
                if name == "trap" {
                    shape.trap_spans += 1;
                }
            }
            "i" => shape.instants += 1,
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    for (tid, (stack, _)) in &lanes {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) never closed: {stack:?}",
                stack.len()
            ));
        }
    }
    shape.tids = lanes.len() as u64;
    Ok(shape)
}

/// Renders a metrics snapshot as pretty-printed JSON — the dump format of
/// `bastion stats --json` and the bench bins.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snapshot).expect("metrics snapshot serializes")
}

/// Renders a metrics snapshot as one compact JSON line for the periodic
/// JSONL snapshot stream (`bastion top --jsonl`, and the `bastiond`
/// per-tenant lanes to come). `labels` become top-level string fields
/// (e.g. `world`/`tenant`), so a line is self-describing without a header.
pub fn metrics_jsonl_line(snapshot: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    let mut fields: Vec<(&str, Value)> = labels
        .iter()
        .map(|&(k, v)| (k, Value::Str(v.to_string())))
        .collect();
    let counters: Vec<Value> = snapshot
        .counters
        .iter()
        .map(|c| {
            obj(vec![
                ("name", Value::Str(c.name.clone())),
                ("value", Value::UInt(c.value)),
            ])
        })
        .collect();
    fields.push(("counters", Value::Array(counters)));
    let sketches: Vec<Value> = snapshot
        .sketches
        .iter()
        .map(|s| {
            obj(vec![
                ("name", Value::Str(s.name.clone())),
                ("count", Value::UInt(s.count)),
                ("p50", Value::UInt(s.p50)),
                ("p95", Value::UInt(s.p95)),
                ("p99", Value::UInt(s.p99)),
                ("p999", Value::UInt(s.p999)),
            ])
        })
        .collect();
    fields.push(("sketches", Value::Array(sketches)));
    let hists: Vec<Value> = snapshot
        .histograms
        .iter()
        .map(|h| {
            obj(vec![
                ("name", Value::Str(h.name.clone())),
                ("count", Value::UInt(h.count)),
                ("sum", Value::UInt(h.sum)),
            ])
        })
        .collect();
    fields.push(("histograms", Value::Array(hists)));
    serde_json::to_string(&RawValue(obj(fields))).expect("jsonl line serializes")
}

/// Sanitizes a dotted metric name into a Prometheus metric name:
/// `kernel.cycles_per_trap` → `bastion_kernel_cycles_per_trap`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("bastion_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a label set (plus an optional extra pair) as `{k="v",...}`,
/// empty string when there are no labels.
fn prom_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|&(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters as `counter`, histograms as cumulative
/// `histogram` families (`_bucket`/`_sum`/`_count` with an `+Inf` edge),
/// and quantile sketches as `summary` families (p50/p95/p99/p999
/// `quantile` series plus `_sum`/`_count`). `labels` are attached to
/// every sample — the per-World/tenant lane mechanism `bastiond` reuses.
pub fn prometheus_text(snapshot: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let name = prom_name(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!(
            "{name}{} {}\n",
            prom_labels(labels, None),
            c.value
        ));
    }
    for h in &snapshot.histograms {
        let name = prom_name(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for b in &h.buckets {
            cumulative += b.count;
            let le = if b.le == u64::MAX {
                "+Inf".to_string()
            } else {
                b.le.to_string()
            };
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                prom_labels(labels, Some(("le", &le)))
            ));
        }
        out.push_str(&format!(
            "{name}_sum{} {}\n",
            prom_labels(labels, None),
            h.sum
        ));
        out.push_str(&format!(
            "{name}_count{} {}\n",
            prom_labels(labels, None),
            h.count
        ));
    }
    for s in &snapshot.sketches {
        let name = prom_name(&s.name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, v) in s.lanes() {
            out.push_str(&format!(
                "{name}{} {v}\n",
                prom_labels(labels, Some(("quantile", q)))
            ));
        }
        out.push_str(&format!(
            "{name}_sum{} {}\n",
            prom_labels(labels, None),
            s.sum
        ));
        out.push_str(&format!(
            "{name}_count{} {}\n",
            prom_labels(labels, None),
            s.count
        ));
    }
    out
}

/// Shape summary of a validated Prometheus exposition document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromShape {
    /// Total samples (non-comment lines).
    pub samples: usize,
    /// `# TYPE` families declared.
    pub families: usize,
    /// Histogram families (checked for `+Inf` edge and `_sum`/`_count`).
    pub histograms: usize,
    /// Summary families (checked for quantile series and `_sum`/`_count`).
    pub summaries: usize,
}

/// Validates Prometheus text exposition shape: every sample line parses
/// as `name[{labels}] value`, every sample's family was declared by a
/// preceding `# TYPE`, histogram buckets are cumulative and end at
/// `+Inf`, and histogram/summary families carry `_sum` and `_count`.
///
/// # Errors
/// Returns a description of the first malformed line or family.
pub fn validate_prometheus(text: &str) -> Result<PromShape, String> {
    let mut shape = PromShape::default();
    let mut families: Vec<(String, String)> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or(format!("line {ln}: TYPE without name"))?;
            let kind = it.next().ok_or(format!("line {ln}: TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary") {
                return Err(format!("line {ln}: unknown TYPE kind `{kind}`"));
            }
            families.push((name.to_string(), kind.to_string()));
            shape.families += 1;
            match kind {
                "histogram" => shape.histograms += 1,
                "summary" => shape.summaries += 1,
                _ => {}
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {ln}: no value: `{line}`"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {ln}: non-numeric value `{value}`"));
        }
        let name_part = series.split('{').next().unwrap_or(series);
        if name_part.is_empty()
            || !name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {ln}: bad metric name `{name_part}`"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {ln}: unterminated label set"));
        }
        let family = families.iter().find(|(f, _)| {
            name_part == f
                || name_part
                    .strip_prefix(f.as_str())
                    .is_some_and(|sfx| matches!(sfx, "_bucket" | "_sum" | "_count"))
        });
        if family.is_none() {
            return Err(format!("line {ln}: sample `{name_part}` has no # TYPE"));
        }
        shape.samples += 1;
        seen.push(series.to_string());
    }
    // Family completeness: histograms need a +Inf bucket edge, both
    // histograms and summaries need _sum and _count.
    for (name, kind) in &families {
        if kind == "histogram" {
            let inf = seen
                .iter()
                .any(|s| s.starts_with(&format!("{name}_bucket")) && s.contains("le=\"+Inf\""));
            if !inf {
                return Err(format!("histogram `{name}` missing +Inf bucket"));
            }
        }
        if kind == "histogram" || kind == "summary" {
            for sfx in ["_sum", "_count"] {
                if !seen
                    .iter()
                    .any(|s| s.split('{').next().unwrap_or(s) == format!("{name}{sfx}").as_str())
                {
                    return Err(format!("family `{name}` missing {name}{sfx}"));
                }
            }
        }
        if kind == "summary" {
            let q = seen
                .iter()
                .any(|s| s.starts_with(name.as_str()) && s.contains("quantile=\""));
            if !q {
                return Err(format!("summary `{name}` has no quantile series"));
            }
        }
    }
    Ok(shape)
}

/// Per-phase aggregation of an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotal {
    /// The phase.
    pub phase: Phase,
    /// Completed spans.
    pub spans: u64,
    /// Instant events.
    pub instants: u64,
    /// Inclusive virtual cycles (children counted).
    pub cycles: u64,
    /// Exclusive virtual cycles (children subtracted).
    pub self_cycles: u64,
}

/// Aggregates per-phase span counts and cycle totals (inclusive and
/// exclusive). Orphaned ends and unclosed begins are ignored, mirroring
/// the exporter's balancing policy.
pub fn phase_totals(events: &[TraceEvent]) -> Vec<PhaseTotal> {
    use std::collections::BTreeMap;
    fn slot(acc: &mut BTreeMap<Phase, PhaseTotal>, phase: Phase) -> &mut PhaseTotal {
        acc.entry(phase).or_insert(PhaseTotal {
            phase,
            spans: 0,
            instants: 0,
            cycles: 0,
            self_cycles: 0,
        })
    }
    let mut acc: BTreeMap<Phase, PhaseTotal> = BTreeMap::new();
    let mut stack: Vec<(Phase, u64, u64)> = Vec::new(); // (phase, begin_ts, child cycles)
    for ev in events {
        match ev.kind {
            EventKind::Begin => stack.push((ev.phase, ev.vcycles, 0)),
            EventKind::End => {
                if stack.last().map(|f| f.0) == Some(ev.phase) {
                    let (phase, begin, child) = stack.pop().expect("non-empty");
                    let incl = ev.vcycles.saturating_sub(begin);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += incl;
                    }
                    let t = slot(&mut acc, phase);
                    t.spans += 1;
                    t.cycles += incl;
                    t.self_cycles += incl.saturating_sub(child);
                }
            }
            EventKind::Instant => slot(&mut acc, ev.phase).instants += 1,
        }
    }
    acc.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::EventKind as K;

    fn ev(kind: K, phase: Phase, vcycles: u64) -> TraceEvent {
        TraceEvent {
            kind,
            phase,
            trap: 1,
            vcycles,
            wall_ns: vcycles * 10,
            arg: 0,
        }
    }

    #[test]
    fn export_and_validate_roundtrip() {
        let events = vec![
            ev(K::Begin, Phase::Trap, 100),
            ev(K::Begin, Phase::CtCheck, 110),
            ev(K::Instant, Phase::CtCacheHit, 115),
            ev(K::End, Phase::CtCheck, 150),
            ev(K::End, Phase::Trap, 200),
        ];
        let json = chrome_trace_json(&events);
        let shape = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(shape.begins, 2);
        assert_eq!(shape.ends, 2);
        assert_eq!(shape.instants, 1);
        assert_eq!(shape.trap_spans, 1);
        assert_eq!(shape.max_depth, 2);
    }

    #[test]
    fn wrapped_stream_is_rebalanced() {
        // A ring that wrapped mid-span: orphan ends up front, a dangling
        // begin at the back.
        let events = vec![
            ev(K::End, Phase::CtCheck, 90),
            ev(K::End, Phase::Trap, 95),
            ev(K::Begin, Phase::Trap, 100),
            ev(K::Begin, Phase::CfWalk, 110),
            ev(K::End, Phase::CfWalk, 150),
        ];
        let json = chrome_trace_json(&events);
        let shape = validate_chrome_trace(&json).expect("rebalanced trace validates");
        assert_eq!(shape.begins, shape.ends);
        assert_eq!(shape.trap_spans, 1, "dangling trap begin closed");
    }

    #[test]
    fn stitched_parts_get_distinct_tids() {
        let worker = |base: u64| {
            vec![
                ev(K::Begin, Phase::Trap, base),
                ev(K::End, Phase::Trap, base + 50),
            ]
        };
        let (a, b) = (worker(100), worker(10));
        // Part order is the determinism contract; note lane 2's timestamps
        // restart below lane 1's — legal, monotonicity is per tid.
        let json = chrome_trace_json_parts(&[(1, &a), (2, &b)]);
        let shape = validate_chrome_trace(&json).expect("stitched trace validates");
        assert_eq!(shape.tids, 2);
        assert_eq!(shape.trap_spans, 2);
        assert_eq!(shape.begins, 2);
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn validator_rejects_non_monotone() {
        let json = r#"{"traceEvents":[
            {"name":"trap","ph":"B","ts":100,"pid":1,"tid":1},
            {"name":"trap","ph":"E","ts":50,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(json).is_err());
    }

    #[test]
    fn validator_rejects_unbalanced() {
        let json = r#"{"traceEvents":[
            {"name":"trap","ph":"B","ts":100,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(json).is_err());
        let json = r#"{"traceEvents":[
            {"name":"trap","ph":"E","ts":100,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(json).is_err());
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let mut r = crate::metrics::MetricsRegistry::new();
        r.counter_add("monitor.denies", 3);
        r.observe("kernel.cycles_per_trap", 120);
        r.observe("kernel.cycles_per_trap", 7000);
        for v in [100u64, 200, 300, 5000] {
            r.sketch_observe("trap.verify_cycles", v);
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_exposition_validates() {
        let snap = sample_snapshot();
        let text = prometheus_text(&snap, &[("world", "webserve")]);
        let shape = validate_prometheus(&text).expect("valid exposition");
        assert_eq!(shape.families, 3);
        assert_eq!(shape.histograms, 1);
        assert_eq!(shape.summaries, 1);
        assert!(text.contains("bastion_monitor_denies{world=\"webserve\"} 3"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("bastion_trap_verify_cycles_count{world=\"webserve\"} 4"));
        // Histogram buckets are cumulative: the +Inf bucket equals _count.
        let inf = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(inf, "2");
        // Unlabelled exposition also validates.
        validate_prometheus(&prometheus_text(&snap, &[])).expect("unlabelled validates");
    }

    #[test]
    fn prometheus_validator_rejects_malformed() {
        assert!(validate_prometheus("bastion_x 1\n").is_err(), "no # TYPE");
        assert!(validate_prometheus("# TYPE bastion_x counter\nbastion_x notanumber\n").is_err());
        assert!(validate_prometheus("# TYPE bastion_x widget\n").is_err());
        assert!(
            validate_prometheus("# TYPE bastion_x histogram\nbastion_x_bucket{le=\"1\"} 1\n")
                .is_err(),
            "histogram without +Inf/_sum/_count must fail"
        );
        assert!(
            validate_prometheus("# TYPE bastion_x counter\nbastion_x{world=\"w\" 1\n").is_err(),
            "unterminated label set must fail"
        );
    }

    #[test]
    fn jsonl_line_is_single_line_with_labels() {
        let snap = sample_snapshot();
        let line = metrics_jsonl_line(&snap, &[("world", "dbkv"), ("tenant", "7")]);
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"world\":\"dbkv\",\"tenant\":\"7\""));
        assert!(line.contains("\"sketches\""));
        assert!(line.contains("\"p999\""));
        // And it parses back as JSON.
        let v: super::RawValue = serde_json::from_str(&line).expect("parses");
        assert!(matches!(v.0, Value::Object(_)));
    }

    #[test]
    fn phase_totals_inclusive_and_exclusive() {
        let events = vec![
            ev(K::Begin, Phase::Trap, 0),
            ev(K::Begin, Phase::CfWalk, 10),
            ev(K::End, Phase::CfWalk, 40),
            ev(K::End, Phase::Trap, 100),
            ev(K::Instant, Phase::Retry, 100),
        ];
        let totals = phase_totals(&events);
        let get = |p: Phase| totals.iter().find(|t| t.phase == p).copied().unwrap();
        assert_eq!(get(Phase::Trap).cycles, 100);
        assert_eq!(get(Phase::Trap).self_cycles, 70);
        assert_eq!(get(Phase::CfWalk).cycles, 30);
        assert_eq!(get(Phase::CfWalk).self_cycles, 30);
        assert_eq!(get(Phase::Retry).instants, 1);
    }
}
