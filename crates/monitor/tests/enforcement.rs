//! End-to-end enforcement tests: compile → load → protect → run, then
//! corrupt state like an attacker and observe which context fires.

use bastion_compiler::BastionCompiler;
use bastion_ir::build::ModuleBuilder;
use bastion_ir::{sysno, Module, Operand, Ty};
use bastion_kernel::{ExitReason, RunStatus, World};
use bastion_monitor::{protect, ContextConfig};
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

/// A module exercising the Figure 2 shape: main → worker → mmap with
/// constants and memory-backed args, plus an execve upgrade path with a
/// global pathname, plus an mprotect stub that is never called.
fn app() -> Module {
    let mut mb = ModuleBuilder::new("app");
    let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
    let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
    let _mprotect = mb.declare_syscall_stub("mprotect", sysno::MPROTECT, 3);
    let exit = mb.declare_syscall_stub("exit", sysno::EXIT, 1);
    let path = mb.global_str("upgrade_path", "/sbin/upgrade");

    let worker = mb.declare("worker", &[("flags", Ty::I64)], Ty::Void);
    let mut f = mb.define(worker);
    let prots = f.local("prots", Ty::I64);
    let pa = f.frame_addr(prots);
    f.store(pa, 3i64);
    let pa2 = f.frame_addr(prots);
    let pv = f.load(pa2);
    let fa = f.frame_addr(f.param_slot(0));
    let fv = f.load(fa);
    let _ = f.call_direct(
        mmap,
        &[
            0i64.into(),
            4096i64.into(),
            pv.into(),
            fv.into(),
            (-1i64).into(),
            0i64.into(),
        ],
    );
    f.ret(None);
    f.finish();

    let upgrade = mb.declare("upgrade", &[], Ty::Void);
    let mut f = mb.define(upgrade);
    let p = f.global_addr(path);
    let _ = f.call_direct(execve, &[p.into(), 0i64.into(), 0i64.into()]);
    f.ret(None);
    f.finish();

    let mut f = mb.function("main", &[], Ty::I64);
    let flags = f.local("flags", Ty::I64);
    let fa = f.frame_addr(flags);
    f.store(fa, 0x21i64);
    let fa2 = f.frame_addr(flags);
    let fv = f.load(fa2);
    let _ = f.call_direct(worker, &[fv.into()]);
    let _ = f.call_direct(upgrade, &[]);
    let _ = f.call_direct(exit, &[0i64.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    mb.finish()
}

struct Setup {
    world: World,
    pid: bastion_kernel::Pid,
}

fn launch(cfg: ContextConfig) -> Setup {
    let out = BastionCompiler::new().compile(app()).unwrap();
    let image = Arc::new(Image::load(out.module.clone()).unwrap());
    let machine = Machine::new(image.clone(), CostModel::default());
    let mut world = World::new(CostModel::default());
    world
        .kernel
        .vfs
        .put_file("/sbin/upgrade", vec![0x7f], 0o755);
    let pid = world.spawn(machine);
    protect(&mut world, pid, &image, &out.metadata, cfg);
    Setup { world, pid }
}

#[test]
fn legitimate_run_is_fully_allowed() {
    let mut s = launch(ContextConfig::full());
    assert_eq!(s.world.run(50_000_000), RunStatus::AllExited);
    let exit = s.world.proc(s.pid).unwrap().exit.clone().unwrap();
    assert_eq!(exit, ExitReason::Exited(0));
    // mmap + execve + exit all trapped (exit is not sensitive — only the
    // two sensitive calls hook the monitor).
    assert_eq!(s.world.trap_count, 2);
    assert_eq!(s.world.kernel.count_of(sysno::MMAP), 1);
    assert_eq!(s.world.kernel.count_of(sysno::EXECVE), 1);
    assert_eq!(s.world.kernel.exec_log.len(), 1);
}

#[test]
fn legitimate_run_passes_each_config() {
    for cfg in [
        ContextConfig::hook_only(),
        ContextConfig::ct(),
        ContextConfig::ct_cf(),
        ContextConfig::full(),
    ] {
        let mut s = launch(cfg);
        assert_eq!(s.world.run(50_000_000), RunStatus::AllExited, "{cfg:?}");
        let exit = s.world.proc(s.pid).unwrap().exit.clone().unwrap();
        assert_eq!(exit, ExitReason::Exited(0), "{cfg:?}");
    }
}

#[test]
fn not_callable_syscall_is_seccomp_killed() {
    // A variant app that *does* call mprotect, compiled against the same
    // metadata built from `app()` (where mprotect is not-callable), would
    // be artificial; instead check the filter action directly through a
    // world run: patch main to call mprotect via its stub.
    let mut m = app();
    let mprotect = m.func_by_name("mprotect").unwrap();
    let main = m.func_by_name("main").unwrap();
    // Prepend a direct call to mprotect in main.
    m.functions[main.index()].blocks[0].insts.insert(
        0,
        bastion_ir::Inst::Call {
            dst: None,
            callee: bastion_ir::Callee::Direct(mprotect),
            args: vec![Operand::Imm(0), Operand::Imm(0), Operand::Imm(7)],
        },
    );
    // Compile metadata from the ORIGINAL app (mprotect unused), load the
    // patched module: models an attacker reaching a not-callable stub.
    let out = BastionCompiler::new().compile(app()).unwrap();
    let image = Arc::new(
        Image::load({
            // Instrument the patched module for a loadable image, but keep the
            // original metadata for the monitor/filter.
            BastionCompiler::new().compile(m).unwrap().module
        })
        .unwrap(),
    );
    let machine = Machine::new(image.clone(), CostModel::default());
    let mut world = World::new(CostModel::default());
    let pid = world.spawn(machine);
    protect(
        &mut world,
        pid,
        &image,
        &out.metadata,
        ContextConfig::full(),
    );
    assert_eq!(world.run(50_000_000), RunStatus::AllExited);
    let exit = world.proc(pid).unwrap().exit.clone().unwrap();
    assert_eq!(
        exit,
        ExitReason::SeccompKill {
            nr: sysno::MPROTECT
        }
    );
    assert_eq!(world.kernel.count_of(sysno::MPROTECT), 0);
}

/// Attack helper: run until the first trap *would* occur by corrupting
/// memory before `worker` passes flags to mmap. We stop the world right
/// after spawn, locate the flags variable in main's frame, and overwrite
/// it with a raw (uninstrumented) write — then let the run continue.
#[test]
fn argument_corruption_is_detected_by_ai() {
    let out = BastionCompiler::new().compile(app()).unwrap();
    let image = Arc::new(Image::load(out.module.clone()).unwrap());
    let mut machine = Machine::new(image.clone(), CostModel::default());

    // Execute instructions manually until the store to `flags` and its
    // ctx_write_mem have run, then corrupt `flags` in memory (raw write,
    // as a heap-overflow attacker would) before the call to worker.
    let main = image.module.func_by_name("main").unwrap();
    let fi = image.frame(main);
    let flags_addr = (image.stack_top - 16) - fi.frame_size + fi.slot_offsets[0];
    let mut corrupted = false;
    let mut world = World::new(CostModel::default());
    world
        .kernel
        .vfs
        .put_file("/sbin/upgrade", vec![0x7f], 0o755);

    // Step until flags holds 0x21 (store executed), let the following
    // ctx_write_mem refresh the shadow copy, then corrupt the variable —
    // exactly the window a heap-overflow attacker has.
    for _ in 0..10_000 {
        use bastion_vm::MemIo;
        if !corrupted && machine.mem.read_u64(flags_addr).unwrap_or(0) == 0x21 {
            let e = bastion_vm::interp::step(&mut machine); // ctx_write_mem
            assert!(matches!(e, bastion_vm::Event::Continue), "premature {e:?}");
            machine
                .mem
                .write_unchecked(flags_addr, &0x7777u64.to_le_bytes());
            corrupted = true;
            break;
        }
        let e = bastion_vm::interp::step(&mut machine);
        assert!(matches!(e, bastion_vm::Event::Continue), "premature {e:?}");
    }
    assert!(corrupted, "never observed the legitimate store");

    let pid = world.spawn(machine);
    protect(
        &mut world,
        pid,
        &image,
        &out.metadata,
        ContextConfig::full(),
    );
    assert_eq!(world.run(50_000_000), RunStatus::AllExited);
    let exit = world.proc(pid).unwrap().exit.clone().unwrap();
    match exit {
        ExitReason::MonitorKill { nr, reason } => {
            assert_eq!(nr, sysno::MMAP);
            assert!(reason.starts_with("AI:"), "wrong context: {reason}");
        }
        other => panic!("attack not caught: {other:?}"),
    }
    // The corrupted mmap never executed.
    assert_eq!(world.kernel.count_of(sysno::MMAP), 0);
}

#[test]
fn ct_and_cf_disabled_still_catch_with_ai() {
    // Same corruption, AI-only configuration.
    let out = BastionCompiler::new().compile(app()).unwrap();
    let image = Arc::new(Image::load(out.module.clone()).unwrap());
    let mut machine = Machine::new(image.clone(), CostModel::default());
    let main = image.module.func_by_name("main").unwrap();
    let fi = image.frame(main);
    let flags_addr = (image.stack_top - 16) - fi.frame_size + fi.slot_offsets[0];
    for _ in 0..10_000 {
        use bastion_vm::MemIo;
        if machine.mem.read_u64(flags_addr).unwrap_or(0) == 0x21 {
            let _ = bastion_vm::interp::step(&mut machine); // ctx_write_mem
            machine
                .mem
                .write_unchecked(flags_addr, &0x7777u64.to_le_bytes());
            break;
        }
        let _ = bastion_vm::interp::step(&mut machine);
    }
    let mut world = World::new(CostModel::default());
    world
        .kernel
        .vfs
        .put_file("/sbin/upgrade", vec![0x7f], 0o755);
    let pid = world.spawn(machine);
    let cfg = ContextConfig {
        call_type: false,
        control_flow: false,
        arg_integrity: true,
        fetch_state: true,
        fast_path: true,
        resilience: bastion_monitor::Resilience::default(),
        prefilter: false,
        prefilter_differential: false,
    };
    protect(&mut world, pid, &image, &out.metadata, cfg);
    assert_eq!(world.run(50_000_000), RunStatus::AllExited);
    let exit = world.proc(pid).unwrap().exit.clone().unwrap();
    assert!(matches!(exit, ExitReason::MonitorKill { .. }), "{exit:?}");
}

#[test]
fn monitor_collects_depth_statistics() {
    // Depth statistics come from monitor walks, so measure with tier 1
    // off — with the prefilter on, every clean trap (including the
    // extended-pointee execve, since the probe rows landed) is settled at
    // classify time and nothing walks.
    let mut s = launch(ContextConfig::full().with_prefilter(false));
    assert_eq!(s.world.run(50_000_000), RunStatus::AllExited);
    assert_eq!(s.world.trap_count, 2);
    assert!(s.world.trace_cycles > 0);
    let tracer = s.world.take_tracer().unwrap();
    let monitor = tracer
        .as_any()
        .downcast_ref::<bastion_monitor::Monitor>()
        .expect("tracer is the BASTION monitor");
    // mmap: stub ← worker ← main = 3 frames; execve: stub ← upgrade ← main.
    assert_eq!(monitor.stats.traps, 2);
    assert_eq!(monitor.stats.min_depth, 3);
    assert_eq!(monitor.stats.max_depth, 3);
    assert!((monitor.stats.avg_depth() - 3.0).abs() < 1e-9);
    assert_eq!(monitor.stats.violations(), 0);
    assert!(monitor.stats.init_cycles > 0);
    assert_eq!(monitor.stats.prefilter_compile_cycles, 0);
    assert_eq!(
        monitor.log,
        vec![(sysno::MMAP, true), (sysno::EXECVE, true)]
    );
}

#[test]
fn clean_traps_all_settle_in_tier_1() {
    // With the prefilter on, the same clean run produces zero escalations
    // and zero walks: the mmap trap hits the direct predicates, and the
    // execve trap — an extended-pointee position — hits its probe row.
    let mut s = launch(ContextConfig::full());
    assert_eq!(s.world.run(50_000_000), RunStatus::AllExited);
    assert_eq!(s.world.trap_count, 2);
    let tracer = s.world.take_tracer().unwrap();
    let monitor = tracer
        .as_any()
        .downcast_ref::<bastion_monitor::Monitor>()
        .expect("tracer is the BASTION monitor");
    assert_eq!(monitor.stats.traps, 2);
    assert_eq!(monitor.stats.prefilter_checks, 2);
    assert_eq!(monitor.stats.prefilter_hits, 2);
    assert_eq!(monitor.stats.prefilter_escalations, 0);
    assert_eq!(monitor.stats.escalations_by_reason(), vec![]);
    // Nothing walked: depth statistics stay at their no-walk sentinel.
    assert_eq!(monitor.stats.frames_walked, 0);
    assert_eq!(monitor.stats.min_depth, 0);
    assert_eq!(monitor.stats.violations(), 0);
    // The one-time tier-1 compile charge is visible separately and folded
    // into init, not into per-trap cost.
    assert!(monitor.stats.prefilter_compile_cycles > 0);
    assert!(monitor.stats.init_cycles > monitor.stats.prefilter_compile_cycles);
    assert_eq!(
        monitor.log,
        vec![(sysno::MMAP, true), (sysno::EXECVE, true)]
    );
}
