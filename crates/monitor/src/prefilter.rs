//! Tier-1 seccomp-time prefilter (DESIGN.md §6g–§6h).
//!
//! At monitor-attach time the CT table, the main-rooted syscall-flow
//! automaton, and the argument predicates are compiled into a **flat
//! check program**: dense tables indexed by sensitive-syscall index and by
//! the monitor-tracked flow state, plus sorted flat rows for callsites,
//! functions, valid callers, and argument predicates. The kernel's trap
//! path evaluates the program at seccomp-classify time — in the tracee's
//! own address space, without a ptrace stop — and either proves the trap
//! equivalent to a full-monitor Allow or escalates.
//!
//! **Tier 1 never denies.** Every check below mirrors one check of
//! [`crate::verify`] and has exactly two outcomes: pass, or escalate to
//! the authoritative monitor (which re-derives the verdict from scratch
//! and owns every deny string). Anything tier 1 cannot replicate cheaply
//! — retry/backoff policy, the degradation ladder, injected faults —
//! escalates unconditionally, so detection power and deny provenance are
//! byte-identical with the prefilter off.
//!
//! Extended-pointee positions are handled by per-site **probe rows**
//! (§6h): a bounded, page-boundary-aware scan of the pointee against its
//! shadow entries via the in-address-space kernel accessors, escalating
//! wherever the monitor's [`crate::verify`] probe would deny and on any
//! read anomaly. The flow check is an **edge-precise automaton** over the
//! compiler's [`bastion_compiler::metadata::ContextMetadata::syscall_flow`]
//! (one compact state word per pid); metadata without flow information
//! falls back to the PR-6 coarse reachability digraph.

use crate::verify::const_to_u64;
use crate::{ContextConfig, LaunchInfo};
use bastion_compiler::metadata::{ArgMeta, CallsiteKind, ContextMetadata};
use bastion_ir::CALL_SIZE;
use bastion_kernel::{EscalateReason as R, Pid, PrefilterVerdict, Tracee};
use bastion_obs as obs;
use bastion_vm::shadow::Binding;
use bastion_vm::ShadowTable;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// CT flag bits in [`Prefilter::ct_flags`].
const CT_CALLABLE: u8 = 1 << 0;
const CT_DIRECT: u8 = 1 << 1;
const CT_INDIRECT: u8 = 1 << 2;

/// One compiled callsite row (sorted by `addr`).
#[derive(Debug, Clone, Copy)]
struct CsRow {
    addr: u64,
    /// `u64::MAX` encodes an indirect callsite; anything else is the
    /// direct target's entry.
    target: u64,
    in_func: u64,
}

impl CsRow {
    fn is_indirect(&self) -> bool {
        self.target == u64::MAX
    }
}

/// One compiled function row (sorted by `entry`).
#[derive(Debug, Clone)]
struct FnRow {
    entry: u64,
    end: u64,
    frame_size: u64,
    slot_offsets: Vec<u64>,
}

/// A direct-argument predicate, pre-resolved so evaluation touches no
/// maps and no symbol tables.
#[derive(Debug, Clone)]
enum ArgPred {
    /// Expected register bit pattern (signed constants already widened
    /// through [`const_to_u64`] — the one normalization rule).
    Const(u64),
    /// Shadow-binding-backed argument.
    Mem,
    /// Pre-resolved global symbol address (`None` = symbol unknown at
    /// launch, which the monitor denies) plus expected pointee bytes.
    Global {
        addr: Option<u64>,
        expected: Option<Vec<u8>>,
    },
    /// Stack-range plausibility.
    StackAddr,
    /// Unverifiable position: always passes, exactly like the monitor.
    Opaque,
}

/// One compiled sensitive-syscall-site row (sorted by `callsite`).
#[derive(Debug, Clone)]
struct SiteRow {
    callsite: u64,
    nr: u32,
    args: Vec<ArgPred>,
    /// Per-position extended-pointee flag (index 0 = position 1): the
    /// probe row runs after the direct predicate passes, exactly where
    /// the monitor runs its pointee probe.
    ext: Vec<bool>,
}

/// A propagation-site predicate (re-validated per walked frame).
#[derive(Debug, Clone)]
enum PropPred {
    Mem,
    Const(u64),
}

/// The compiled flat check program plus the per-pid flow state it tracks.
#[derive(Debug, Clone, Default)]
pub struct Prefilter {
    // Which contexts the program replicates (copied from the config so
    // tier 1 checks exactly what tier 2 would).
    call_type: bool,
    control_flow: bool,
    arg_integrity: bool,

    /// Sorted sensitive syscall numbers — the dense index for every
    /// `nr`-keyed table below.
    nrs: Vec<u32>,
    /// CT flag byte per nr index.
    ct_flags: Vec<u8>,
    /// Whether `nrs[i]` may be a pid's **first** sensitive trap.
    flow_initial: Vec<bool>,
    /// Dense transition table: `flow_edges[i * nrs.len() + j]` says
    /// whether `nrs[j]` may trap when the pid's last trapped nr was
    /// `nrs[i]`. Any transition outside the table escalates (never
    /// denies — flow precision only trades escalations).
    flow_edges: Vec<bool>,

    /// Flat callsite table, sorted by address.
    callsites: Vec<CsRow>,
    /// Flat function table, sorted by entry.
    funcs: Vec<FnRow>,
    /// Valid direct callers per callee entry (both levels sorted).
    valid_callers: Vec<(u64, Vec<u64>)>,
    /// Legitimate indirect-entry functions, sorted.
    indirect_entries: Vec<u64>,
    /// Sensitive syscall sites with argument predicates, sorted by
    /// callsite.
    sites: Vec<SiteRow>,
    /// Propagation sites, sorted by callsite.
    prop: Vec<(u64, Vec<(u8, PropPred)>)>,

    main_entry: u64,
    stack: (u64, u64),

    /// Monitor-tracked automaton position per pid: 0 = no sensitive trap
    /// yet, `i + 1` = last trapped nr was `nrs[i]`.
    state: HashMap<Pid, usize>,
}

impl Prefilter {
    /// Compiles the flat check program from rebased metadata and
    /// launch-time symbol/stack information.
    pub fn compile(md: &ContextMetadata, info: &LaunchInfo, cfg: &ContextConfig) -> Prefilter {
        let nrs: Vec<u32> = md.sensitive_nrs.iter().copied().collect();
        let nr_idx: BTreeMap<u32, usize> = nrs.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        let ct_flags = nrs
            .iter()
            .map(|nr| {
                md.syscall_classes.get(nr).map_or(0, |c| {
                    (u8::from(c.callable()) * CT_CALLABLE)
                        | (u8::from(c.allows_direct()) * CT_DIRECT)
                        | (u8::from(c.allows_indirect()) * CT_INDIRECT)
                })
            })
            .collect();
        // ---- syscall-flow automaton ----
        // The compiler's main-rooted flow analysis gives the edge-precise
        // automaton: which nrs may trap first, and which nr-to-nr
        // transitions the program can actually produce. Metadata without
        // flow information (hand-built, or from an older compiler) falls
        // back to the coarse order-insensitive reachability digraph —
        // every state permits exactly the main-reachable set. Either
        // table only trades escalations, never allows: a flow miss hands
        // the trap to the monitor, which has no flow check at all.
        let (flow_initial, flow_edges) = if md.syscall_flow.is_empty() {
            let reach = reachable_nrs(md, &nrs, &nr_idx);
            let mut dense = vec![false; nrs.len() * nrs.len()];
            for row in dense.chunks_mut(nrs.len().max(1)) {
                row.copy_from_slice(&reach);
            }
            (reach, dense)
        } else {
            let initial = nrs
                .iter()
                .map(|nr| md.syscall_flow.initial.contains(nr))
                .collect();
            let mut dense = vec![false; nrs.len() * nrs.len()];
            for &(a, b) in &md.syscall_flow.edges {
                if let (Some(&i), Some(&j)) = (nr_idx.get(&a), nr_idx.get(&b)) {
                    dense[i * nrs.len() + j] = true;
                }
            }
            (initial, dense)
        };

        let callsites = md
            .callsites
            .iter()
            .map(|(&addr, m)| CsRow {
                addr,
                target: match m.kind {
                    CallsiteKind::Direct(t) => t,
                    CallsiteKind::Indirect => u64::MAX,
                },
                in_func: m.in_func,
            })
            .collect();
        let funcs = md
            .functions
            .values()
            .map(|f| FnRow {
                entry: f.entry,
                end: f.end,
                frame_size: f.frame_size,
                slot_offsets: f.slot_offsets.clone(),
            })
            .collect();
        let valid_callers = md
            .valid_callers
            .iter()
            .map(|(&callee, s)| (callee, s.iter().copied().collect()))
            .collect();
        let indirect_entries = md.indirect_entries.iter().copied().collect();

        let compile_arg = |am: &ArgMeta| match am {
            ArgMeta::Const(v) => ArgPred::Const(const_to_u64(*v)),
            ArgMeta::Mem => ArgPred::Mem,
            ArgMeta::Global { name, expected } => ArgPred::Global {
                addr: info.globals.get(name).copied(),
                expected: expected.clone(),
            },
            ArgMeta::StackAddr => ArgPred::StackAddr,
            ArgMeta::Opaque => ArgPred::Opaque,
        };
        let sites = md
            .syscall_sites
            .iter()
            .map(|(&callsite, s)| {
                let ext_pos = bastion_ir::sysno::extended_positions(s.nr);
                SiteRow {
                    callsite,
                    nr: s.nr,
                    args: s.args.iter().map(compile_arg).collect(),
                    ext: (1..=s.args.len() as u8)
                        .map(|p| ext_pos.contains(&p))
                        .collect(),
                }
            })
            .collect();
        let prop = md
            .prop_sites
            .iter()
            .map(|(&cs, specs)| {
                let compiled = specs
                    .iter()
                    .filter_map(|(pos, am)| match am {
                        ArgMeta::Mem => Some((*pos, PropPred::Mem)),
                        ArgMeta::Const(v) => Some((*pos, PropPred::Const(const_to_u64(*v)))),
                        // The monitor skips these at prop sites; compiling
                        // them out keeps the row dense.
                        ArgMeta::Global { .. } | ArgMeta::StackAddr | ArgMeta::Opaque => None,
                    })
                    .collect();
                (cs, compiled)
            })
            .collect();

        Prefilter {
            call_type: cfg.call_type,
            control_flow: cfg.control_flow,
            arg_integrity: cfg.arg_integrity,
            nrs,
            ct_flags,
            flow_initial,
            flow_edges,
            callsites,
            funcs,
            valid_callers,
            indirect_entries,
            sites,
            prop,
            main_entry: md.main_entry,
            stack: info.stack,
            state: HashMap::new(),
        }
    }

    /// Rough compile cost in virtual cycles (charged to monitor init).
    pub fn compile_cycles(&self) -> u64 {
        8 * (self.callsites.len() + self.funcs.len() + self.sites.len()) as u64
            + 4 * self.nrs.len() as u64
    }

    /// Seeds the child's automaton position from the parent at fork: the
    /// child resumes at the same program point, so its next trap follows
    /// the parent's last trapped nr in the static flow graph.
    pub fn inherit_state(&mut self, parent: Pid, child: Pid) {
        if let Some(&st) = self.state.get(&parent) {
            self.state.insert(child, st);
        }
    }

    /// The flow-automaton state word for `pid`: 0 = no sensitive trap
    /// seen yet, `i + 1` = the last trapped nr was `nrs[i]`. Host-side
    /// observability (flight-recorder entries); charges nothing.
    pub fn state_word(&self, pid: Pid) -> u64 {
        self.state.get(&pid).map_or(0, |&s| s as u64)
    }

    fn nr_pos(&self, nr: u32) -> Option<usize> {
        self.nrs.binary_search(&nr).ok()
    }

    fn callsite(&self, addr: u64) -> Option<&CsRow> {
        self.callsites
            .binary_search_by_key(&addr, |r| r.addr)
            .ok()
            .map(|i| &self.callsites[i])
    }

    /// Range lookup mirroring [`ContextMetadata::func_of`].
    fn func_of(&self, addr: u64) -> Option<&FnRow> {
        let i = self.funcs.partition_point(|f| f.entry <= addr);
        let f = self.funcs.get(i.checked_sub(1)?)?;
        (addr < f.end).then_some(f)
    }

    fn func_by_entry(&self, entry: u64) -> Option<&FnRow> {
        self.funcs
            .binary_search_by_key(&entry, |f| f.entry)
            .ok()
            .map(|i| &self.funcs[i])
    }

    fn is_valid_caller(&self, callee: u64, callsite: u64) -> bool {
        self.valid_callers
            .binary_search_by_key(&callee, |(c, _)| *c)
            .ok()
            .is_some_and(|i| self.valid_callers[i].1.binary_search(&callsite).is_ok())
    }

    fn site(&self, callsite: u64) -> Option<&SiteRow> {
        self.sites
            .binary_search_by_key(&callsite, |s| s.callsite)
            .ok()
            .map(|i| &self.sites[i])
    }

    fn prop_specs(&self, callsite: u64) -> Option<&[(u8, PropPred)]> {
        self.prop
            .binary_search_by_key(&callsite, |(c, _)| *c)
            .ok()
            .map(|i| self.prop[i].1.as_slice())
    }

    /// Evaluates the check program for the trap the tracee is stopped at.
    ///
    /// Mode/quarantine/fault gates are the caller's job
    /// ([`crate::Monitor`]); this is the pure table program.
    pub fn check(&mut self, tracee: &mut Tracee<'_>) -> PrefilterVerdict {
        let esc = PrefilterVerdict::Escalate;
        let regs = tracee.kernel_regs();
        let nr = regs.nr;

        // ---- flow automaton (state word × transition table) ----
        let Some(ni) = self.nr_pos(nr) else {
            return esc(R::FlowMiss);
        };
        let st = self.state.get(&tracee.pid()).copied().unwrap_or(0);
        // The tracked state is "last trapped nr" regardless of which tier
        // handles the trap — tier 2 sees the same sequence, so the
        // automaton position stays synchronized across escalations.
        self.state.insert(tracee.pid(), ni + 1);
        let allowed = if st == 0 {
            self.flow_initial[ni]
        } else {
            self.flow_edges[(st - 1) * self.nrs.len() + ni]
        };
        if !allowed {
            return esc(R::FlowMiss);
        }

        // ---- stub + frame head (mirrors verify_trap's entry) ----
        let Some(stub) = self.func_of(regs.rip) else {
            // Tier 2 denies RipOutsideKnownCode.
            return esc(R::CtMismatch);
        };
        let stub_entry = stub.entry;
        let Ok((saved0, ret0)) = tracee.kernel_read_frame(regs.fp) else {
            return esc(R::ReadFailure);
        };
        let callsite0 = ret0.wrapping_sub(CALL_SIZE);

        // ---- Call-Type (dense flag byte per nr index) ----
        if self.call_type {
            let flags = self.ct_flags[ni];
            if flags & CT_CALLABLE == 0 {
                return esc(R::CtMismatch);
            }
            match self.callsite(callsite0) {
                Some(cs) if cs.is_indirect() => {
                    if flags & CT_INDIRECT == 0 {
                        return esc(R::CtMismatch);
                    }
                }
                Some(_) => {
                    if flags & CT_DIRECT == 0 {
                        return esc(R::CtMismatch);
                    }
                }
                None => return esc(R::CtMismatch),
            }
        }

        if !self.control_flow && !self.arg_integrity {
            return PrefilterVerdict::Allow;
        }

        // ---- frame-pointer chain (mirrors read_chain + validate_chain) ----
        let cf = self.control_flow;
        // (func_entry, creating callsite, fp) per frame, like FrameRec.
        let mut frames: Vec<(u64, Option<u64>, u64)> = Vec::new();
        let mut cur_entry = stub_entry;
        let mut cur_fp = regs.fp;
        let mut pre = Some((saved0, ret0));
        let mut strict = true;
        let mut done = false;
        for _ in 0..128 {
            let (saved, ret) = match pre.take() {
                Some(fr) => fr,
                None => match tracee.kernel_read_frame(cur_fp) {
                    Ok(fr) => fr,
                    Err(_) => return esc(R::ReadFailure),
                },
            };
            if ret == 0 {
                // Bottom: only main may terminate the walk under CF.
                if cf && cur_entry != self.main_entry {
                    return esc(R::ChainAnomaly);
                }
                frames.push((cur_entry, None, cur_fp));
                done = true;
                break;
            }
            let callsite = ret.wrapping_sub(CALL_SIZE);
            let Some(cs) = self.callsite(callsite) else {
                // Unknown callsite: a CF violation, or (CF off) the end of
                // the walkable chain.
                if cf {
                    return esc(R::ChainAnomaly);
                }
                frames.push((cur_entry, None, cur_fp));
                done = true;
                break;
            };
            if cs.is_indirect() {
                if cf && self.indirect_entries.binary_search(&cur_entry).is_err() {
                    return esc(R::ChainAnomaly);
                }
                strict = false;
            } else if cf {
                if cs.target != cur_entry {
                    return esc(R::ChainAnomaly);
                }
                if strict && !self.is_valid_caller(cur_entry, callsite) {
                    return esc(R::ChainAnomaly);
                }
            }
            frames.push((cur_entry, Some(callsite), cur_fp));
            cur_entry = cs.in_func;
            cur_fp = saved;
        }
        if !done {
            // Depth limit: tier 2 denies unconditionally.
            return esc(R::ChainAnomaly);
        }

        // ---- Argument Integrity (direct predicates + probe rows) ----
        if self.arg_integrity {
            let Some(&(_, Some(syscall_cs), _)) = frames.first() else {
                // Tier 2 denies NoSyscallCallsite.
                return esc(R::ArgMismatch);
            };
            let Some(site) = self.site(syscall_cs) else {
                return esc(R::ArgMismatch);
            };
            if site.nr != nr {
                return esc(R::ArgMismatch);
            }
            let shadow = ShadowTable::new(tracee.gs_base());
            for (i, pred) in site.args.iter().enumerate() {
                let actual = regs.args[i];
                let pos = (i + 1) as u8;
                match pred {
                    ArgPred::Const(c) => {
                        if actual != *c {
                            return esc(R::ArgMismatch);
                        }
                    }
                    ArgPred::Mem => {
                        if let PrefilterVerdict::Escalate(r) =
                            check_mem_binding(tracee, &shadow, syscall_cs, pos, actual)
                        {
                            return esc(r);
                        }
                        // Probe row: the monitor runs its pointee probe
                        // right here, after the binding checks pass.
                        if site.ext[i] {
                            if let Err(r) = probe_pointee(tracee, &shadow, actual) {
                                return esc(r);
                            }
                        }
                    }
                    ArgPred::Global { addr, expected } => {
                        let Some(sym) = addr else {
                            // Tier 2 denies UnknownSymbol.
                            return esc(R::ArgMismatch);
                        };
                        if actual != *sym {
                            return esc(R::ArgMismatch);
                        }
                        if let Some(exp) = expected {
                            let mut buf = vec![0u8; exp.len()];
                            if tracee.kernel_read_mem(actual, &mut buf).is_err() {
                                return esc(R::ReadFailure);
                            }
                            if &buf != exp {
                                return esc(R::ArgMismatch);
                            }
                        }
                    }
                    ArgPred::StackAddr => {
                        let (lo, hi) = self.stack;
                        if actual != 0 && !(lo..hi).contains(&actual) {
                            return esc(R::ArgMismatch);
                        }
                    }
                    ArgPred::Opaque => {}
                }
            }

            // Prop-site re-validation up the walked chain.
            for &(entry, created_by, fp) in &frames {
                let Some(created_by) = created_by else {
                    continue;
                };
                let Some(specs) = self.prop_specs(created_by) else {
                    continue;
                };
                for (pos, pred) in specs {
                    match pred {
                        PropPred::Mem => {
                            // A prop-site Mem check has no trapped register
                            // to compare; the monitor checks shadow copy vs
                            // current memory only. Reuse the binding check
                            // with the shadow value as the expected actual.
                            match shadow_mem_current(tracee, &shadow, created_by, *pos) {
                                Ok(()) => {}
                                Err(r) => return esc(r),
                            }
                        }
                        PropPred::Const(c) => {
                            let Some(fm) = self.func_by_entry(entry) else {
                                continue;
                            };
                            let idx = *pos as usize - 1;
                            if idx >= fm.slot_offsets.len() {
                                continue;
                            }
                            let slot = fp - fm.frame_size + fm.slot_offsets[idx];
                            let Ok(cur) = tracee.kernel_read_u64(slot) else {
                                return esc(R::ReadFailure);
                            };
                            if cur != *c {
                                return esc(R::ArgMismatch);
                            }
                        }
                    }
                }
            }
        }

        PrefilterVerdict::Allow
    }
}

/// The PR-6 fallback flow table: a sensitive nr is *flow-reachable* iff
/// some syscall site invoking it sits in a function reachable from `main`
/// through the callsite metadata (indirect callsites fan out to every
/// address-taken function).
fn reachable_nrs(md: &ContextMetadata, nrs: &[u32], nr_idx: &BTreeMap<u32, usize>) -> Vec<bool> {
    let mut edges: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let taken: Vec<u64> = md
        .functions
        .values()
        .filter(|f| f.address_taken)
        .map(|f| f.entry)
        .collect();
    for cs in md.callsites.values() {
        let outs = edges.entry(cs.in_func).or_default();
        match cs.kind {
            CallsiteKind::Direct(t) => {
                outs.insert(t);
            }
            CallsiteKind::Indirect => {
                outs.extend(taken.iter().copied());
            }
        }
    }
    let mut reachable: BTreeSet<u64> = BTreeSet::new();
    let mut queue = vec![md.main_entry];
    while let Some(f) = queue.pop() {
        if !reachable.insert(f) {
            continue;
        }
        if let Some(outs) = edges.get(&f) {
            queue.extend(outs.iter().copied());
        }
    }
    let mut reach = vec![false; nrs.len()];
    for (cs_addr, site) in &md.syscall_sites {
        let in_reach = md
            .callsites
            .get(cs_addr)
            .is_some_and(|c| reachable.contains(&c.in_func));
        if in_reach {
            if let Some(&i) = nr_idx.get(&site.nr) {
                reach[i] = true;
            }
        }
    }
    reach
}

/// Tier-1 probe row: mirrors the monitor's extended-pointee verification
/// (`verify_pointee_shadow`) byte for byte, escalating wherever it would
/// deny. The bounded window is read with the flat-charged in-address-space
/// prefix accessor, so a pointee stopping at a page boundary is observed
/// exactly like the monitor's batched prefix read — page-boundary aware,
/// never faulting, never denying.
fn probe_pointee(tracee: &mut Tracee<'_>, shadow: &ShadowTable, ptr: u64) -> Result<(), R> {
    let mut buf = [0u8; 256];
    let mapped = tracee.kernel_read_mem_prefix(ptr, &mut buf);
    let nul = buf[..mapped].iter().position(|&b| b == 0);
    let (n, nul_found) = (nul.map_or(mapped, |z| z + 1), nul.is_some());
    obs::observe("prefilter.pointee_probe_len", n as u64);
    for (i, &byte) in buf[..n].iter().enumerate() {
        match shadow.read_value_checked(&tracee.shared_shadow(), ptr + i as u64) {
            Ok(Some((legit, size))) => {
                // Tier 2 denies PointeeByteCorrupted.
                if size == 1 && (legit & 0xff) as u8 != byte {
                    return Err(R::ExtendedArgs);
                }
            }
            Ok(_) => {}
            Err(_) => return Err(R::ReadFailure),
        }
    }
    // Non-terminated string ending mid-window: tier 2 denies
    // PointeeRunsOffMapping (real bytes ran off the mapping) — a
    // deterministic property of tracee memory, so hand it over.
    if !nul_found && n > 0 && n < buf.len() {
        return Err(R::ExtendedArgs);
    }
    // Nothing readable at all: if any window byte is shadow-backed, tier 2
    // denies PointeeTailUnverifiable.
    if !nul_found && n < buf.len() {
        for i in n..buf.len() {
            match shadow.read_value_checked(&tracee.shared_shadow(), ptr + i as u64) {
                Ok(Some(_)) => return Err(R::ExtendedArgs),
                Ok(None) => {}
                Err(_) => return Err(R::ReadFailure),
            }
        }
    }
    Ok(())
}

/// Mirrors the monitor's `ArgMeta::Mem` direct-argument check: binding →
/// shadow copy → trapped register → current memory, escalating where the
/// monitor would deny. Shadow integrity failures escalate **without**
/// quarantining — only the authoritative monitor mutates resilience state,
/// so the re-observation in tier 2 produces the canonical deny.
fn check_mem_binding(
    tracee: &mut Tracee<'_>,
    shadow: &ShadowTable,
    callsite: u64,
    pos: u8,
    actual: u64,
) -> PrefilterVerdict {
    let esc = PrefilterVerdict::Escalate;
    let binding = match shadow.get_binding_checked(&tracee.shared_shadow(), callsite, pos) {
        Ok(b) => b,
        Err(_) => return esc(R::ReadFailure),
    };
    match binding {
        Some(Binding::Mem(addr)) => {
            let legit = match shadow.read_value_checked(&tracee.shared_shadow(), addr) {
                Ok(Some((v, _))) => v,
                Ok(None) => return esc(R::ArgMismatch),
                Err(_) => return esc(R::ReadFailure),
            };
            if actual != legit {
                return esc(R::ArgMismatch);
            }
            let Ok(current) = tracee.kernel_read_u64(addr) else {
                return esc(R::ReadFailure);
            };
            if current != legit {
                return esc(R::ArgMismatch);
            }
            PrefilterVerdict::Allow
        }
        Some(Binding::Const(c)) => {
            if actual != const_to_u64(c) {
                return esc(R::ArgMismatch);
            }
            PrefilterVerdict::Allow
        }
        None => esc(R::ArgMismatch),
    }
}

/// Prop-site `Mem` re-validation: shadow copy vs the variable's current
/// memory (there is no trapped register at a propagation site).
fn shadow_mem_current(
    tracee: &mut Tracee<'_>,
    shadow: &ShadowTable,
    callsite: u64,
    pos: u8,
) -> Result<(), R> {
    let binding = shadow
        .get_binding_checked(&tracee.shared_shadow(), callsite, pos)
        .map_err(|_| R::ReadFailure)?;
    match binding {
        Some(Binding::Mem(addr)) => {
            let legit = match shadow
                .read_value_checked(&tracee.shared_shadow(), addr)
                .map_err(|_| R::ReadFailure)?
            {
                Some((v, _)) => v,
                // Tier 2 denies NoShadowCopy.
                None => return Err(R::ArgMismatch),
            };
            let current = tracee.kernel_read_u64(addr).map_err(|_| R::ReadFailure)?;
            if current != legit {
                return Err(R::ArgMismatch);
            }
            Ok(())
        }
        // Tier 2 denies MissingMemBinding.
        Some(Binding::Const(_)) | None => Err(R::ArgMismatch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_compiler::BastionCompiler;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{sysno, Operand, Ty};
    use bastion_vm::{CostModel, Image, Machine};
    use std::sync::Arc;

    fn machine() -> Machine {
        let mut mb = ModuleBuilder::new("fx");
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let z = Operand::Imm(0);
        let _ = f.call_direct(execve, &[z, z, z]);
        f.ret(Some(z));
        f.finish();
        let out = BastionCompiler::new().compile(mb.finish()).unwrap();
        let image = Arc::new(Image::load(out.module).unwrap());
        Machine::new(image, CostModel::default())
    }

    // ---- classify-time mapping-boundary probe (ports the tier-2
    // `PointeeRunsOffMapping` fixtures to seccomp-classify time) ----

    /// An unterminated string running to the end of its mapping makes the
    /// probe **escalate** — tier 1 has no deny path by construction (the
    /// return type is an `EscalateReason`); the monitor then re-observes
    /// the same deterministic memory and issues the canonical
    /// `PointeeRunsOffMapping` deny.
    #[test]
    fn probe_escalates_never_denies_on_last_byte_unmapped() {
        let mut m = machine();
        let base = 0x6100_0000_0000u64;
        m.mem.map_region(base, 0x1000);
        let tail = base + 0x1000 - 16;
        m.mem.write_unchecked(tail, &[b'A'; 16]);
        let mut charge = 0u64;
        let mut tracee = Tracee::new(&m, 1, &mut charge);
        let shadow = ShadowTable::new(tracee.gs_base());
        assert_eq!(
            probe_pointee(&mut tracee, &shadow, tail),
            Err(R::ExtendedArgs)
        );
    }

    /// Control: the same placement with a NUL inside the mapping passes
    /// tier 1, and the bounded window costs exactly one flat
    /// `prefilter_read` charge (shadow reads are free).
    #[test]
    fn probe_passes_terminated_string_at_mapping_edge() {
        let mut m = machine();
        let base = 0x6200_0000_0000u64;
        m.mem.map_region(base, 0x1000);
        let tail = base + 0x1000 - 16;
        let mut bytes = [b'A'; 16];
        bytes[15] = 0;
        m.mem.write_unchecked(tail, &bytes);
        let mut charge = 0u64;
        let mut tracee = Tracee::new(&m, 1, &mut charge);
        let shadow = ShadowTable::new(tracee.gs_base());
        assert_eq!(probe_pointee(&mut tracee, &shadow, tail), Ok(()));
        assert_eq!(charge, CostModel::default().prefilter_read);
    }

    /// A completely unmapped pointer reads zero bytes; with no
    /// shadow-backed bytes in the window the probe passes (mirroring the
    /// monitor, which only denies the empty window when a recorded byte
    /// escaped verification).
    #[test]
    fn probe_mirrors_empty_window_policy() {
        let m = machine();
        let mut charge = 0u64;
        let mut tracee = Tracee::new(&m, 1, &mut charge);
        let shadow = ShadowTable::new(tracee.gs_base());
        assert_eq!(probe_pointee(&mut tracee, &shadow, 0x10), Ok(()));
    }
}
