//! Per-callsite verification cache — the memoization half of the trap fast
//! path.
//!
//! Call-Type and Control-Flow verdicts are pure functions of code addresses
//! and compiler metadata, both of which are fixed for the life of the
//! process: the same `(syscall nr, callsite)` pair always yields the same
//! CT verdict, and the same return-address chain always yields the same CF
//! verdict. SFIP and the eBPF syscall-security work both get their low
//! overheads from exactly this observation — derive per-site state once,
//! reuse it on every subsequent trap.
//!
//! Two caches are kept:
//!
//! * **CT cache** — verdict keyed by `(nr, callsite)`. A hit skips the
//!   class/callsite re-validation (the remote read that recovers the
//!   callsite is still paid — it is what identifies the cache key).
//! * **Walk cache** — verdict keyed by a hash of the observed
//!   return-address chain (plus how the walk terminated). The chain is
//!   still *fetched* on every trap — the paper's threat model requires
//!   looking at the actual stack — but pairwise callee→caller validation
//!   against metadata is skipped on a hit.
//!
//! The walk cache is bypassed entirely when the Argument-Integrity context
//! is enabled: AI consults argument values and frame slots that legally
//! change between traps with identical return-address chains, so caching
//! anything that feeds an AI verdict would be unsound. This is the
//! conservative invalidation policy the design calls for (see DESIGN.md).
//!
//! Deny messages are deterministic functions of the same inputs, so a
//! cached violation reproduces the exact verdict string of a fresh one.

use crate::verify::Violation;
use std::collections::HashMap;

/// A memoized verification outcome: pass, or the violation it produced.
/// The full structured [`Violation`] is cached, so a hit reproduces the
/// rule-level provenance of a fresh verdict, not just its message.
pub type CachedVerdict = Result<(), Violation>;

/// Verification cache plus the fast-path counters surfaced in
/// [`crate::MonitorStats`].
///
/// Walk entries store the **full chain key** (the exact word sequence that
/// was hashed) alongside the verdict, and a lookup only counts as a hit
/// when the stored chain compares equal. The 64-bit FNV-1a hash alone is
/// not a sound cache key: two distinct return-address chains that collide
/// would share a verdict, and a cached `Ok` reused for a different chain
/// is a false-allow primitive. With full-key confirmation a collision is
/// served as a miss (and counted), so aliasing can never cross chains.
#[derive(Debug, Clone, Default)]
pub struct VerifyCache {
    ct: HashMap<(u32, u64), CachedVerdict>,
    walks: HashMap<u64, (Box<[u64]>, CachedVerdict)>,
    /// CT verdicts served from cache.
    pub ct_hits: u64,
    /// Walk verdicts served from cache (full chain key confirmed equal).
    pub walk_hits: u64,
    /// Walk lookups whose hash matched but whose stored chain differed —
    /// aliasing caught by full-key confirmation, served as misses.
    pub walk_collisions: u64,
    /// Frame heads fetched with one batched read instead of two.
    pub batched_frame_reads: u64,
    /// Pointee buffers fetched with one batched read instead of per-byte.
    pub batched_pointee_reads: u64,
}

impl VerifyCache {
    /// Empty cache.
    pub fn new() -> Self {
        VerifyCache::default()
    }

    /// Looks up the CT verdict for `(nr, callsite)`, counting a hit.
    pub fn ct_lookup(&mut self, nr: u32, callsite: u64) -> Option<CachedVerdict> {
        let v = self.ct.get(&(nr, callsite)).cloned();
        if v.is_some() {
            self.ct_hits += 1;
        }
        v
    }

    /// Memoizes the CT verdict for `(nr, callsite)`.
    pub fn ct_store(&mut self, nr: u32, callsite: u64, verdict: CachedVerdict) {
        self.ct.insert((nr, callsite), verdict);
    }

    /// Looks up the walk verdict for a chain, counting a confirmed hit
    /// only when the stored full chain key equals `chain`. A hash match
    /// with a differing chain is a collision: counted and served as a
    /// miss, never as a shared verdict.
    pub fn walk_lookup(&mut self, chain_hash: u64, chain: &[u64]) -> Option<CachedVerdict> {
        match self.walks.get(&chain_hash) {
            Some((key, v)) if key.as_ref() == chain => {
                self.walk_hits += 1;
                Some(v.clone())
            }
            Some(_) => {
                self.walk_collisions += 1;
                None
            }
            None => None,
        }
    }

    /// Memoizes the walk verdict under both the hash and the full chain
    /// key it confirms against. A colliding chain replaces the previous
    /// occupant (last-writer-wins keeps the map bounded by distinct
    /// hashes; the displaced chain simply re-validates on its next trap).
    pub fn walk_store(&mut self, chain_hash: u64, chain: &[u64], verdict: CachedVerdict) {
        self.walks.insert(chain_hash, (chain.into(), verdict));
    }

    /// Number of memoized entries (CT + walk), for tests and diagnostics.
    pub fn len(&self) -> usize {
        self.ct.len() + self.walks.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.ct.is_empty() && self.walks.is_empty()
    }

    /// Drops all memoized verdicts (counters survive). Conservative
    /// invalidation hook for configurations that mutate code metadata.
    pub fn clear(&mut self) {
        self.ct.clear();
        self.walks.clear();
    }
}

/// Incremental FNV-1a hasher for return-address chains.
#[derive(Debug, Clone, Copy)]
pub struct ChainHasher(u64);

impl ChainHasher {
    /// Starts a chain hash at the trapped stub's entry address.
    pub fn new(stub_entry: u64) -> Self {
        let mut h = ChainHasher(0xcbf2_9ce4_8422_2325);
        h.push(stub_entry);
        h
    }

    /// Mixes one address (or terminator discriminant) into the hash.
    pub fn push(&mut self, word: u64) {
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The finished 64-bit chain key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_cache_roundtrip_and_hit_count() {
        let mut c = VerifyCache::new();
        assert!(c.ct_lookup(1, 0x400).is_none());
        assert_eq!(c.ct_hits, 0);
        c.ct_store(1, 0x400, Ok(()));
        c.ct_store(
            2,
            0x400,
            Err(Violation::new(
                crate::ContextKind::CallType,
                bastion_obs::DenyRule::NotCallable,
                "nope",
            )),
        );
        assert_eq!(c.ct_lookup(1, 0x400), Some(Ok(())));
        assert!(matches!(c.ct_lookup(2, 0x400), Some(Err(_))));
        assert_eq!(c.ct_hits, 2);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.ct_hits, 2, "counters survive clear");
    }

    #[test]
    fn walk_cache_confirms_full_chain_key() {
        let mut c = VerifyCache::new();
        let chain_a: &[u64] = &[0x1000, 0x2004, 0x3008, 0, 0x1000];
        let chain_b: &[u64] = &[0x1000, 0x2004, 0x9999, 1, 0xdead];
        // Two crafted chains deliberately filed under the SAME 64-bit
        // hash — the aliasing scenario a hash-only key cannot tell apart.
        let hash = 0xDEAD_BEEF_u64;
        c.walk_store(hash, chain_a, Ok(()));
        // The colliding chain must NOT inherit chain_a's Ok verdict: that
        // would be a false allow. It is a counted miss.
        assert_eq!(c.walk_lookup(hash, chain_b), None);
        assert_eq!(c.walk_collisions, 1);
        assert_eq!(c.walk_hits, 0);
        // The original chain still hits, confirmed against the full key.
        assert_eq!(c.walk_lookup(hash, chain_a), Some(Ok(())));
        assert_eq!(c.walk_hits, 1);
        // Storing the colliding chain's own (deny) verdict displaces the
        // occupant; each chain only ever sees its own verdict.
        let deny = Err(Violation::new(
            crate::ContextKind::ControlFlow,
            bastion_obs::DenyRule::InvalidCaller,
            "bad caller",
        ));
        c.walk_store(hash, chain_b, deny.clone());
        assert_eq!(c.walk_lookup(hash, chain_b), Some(deny));
        assert_eq!(c.walk_lookup(hash, chain_a), None, "displaced, not aliased");
        assert_eq!(c.walk_collisions, 2);
    }

    #[test]
    fn chain_hash_is_order_and_content_sensitive() {
        let h = |words: &[u64]| {
            let mut h = ChainHasher::new(0x1000);
            for &w in words {
                h.push(w);
            }
            h.finish()
        };
        assert_eq!(h(&[1, 2, 3]), h(&[1, 2, 3]));
        assert_ne!(h(&[1, 2, 3]), h(&[3, 2, 1]));
        assert_ne!(h(&[1, 2]), h(&[1, 2, 3]));
        assert_ne!(
            ChainHasher::new(0x1000).finish(),
            ChainHasher::new(0x2000).finish()
        );
    }
}
