//! seccomp filter construction from call-type metadata (paper §7.1).
//!
//! * not-callable syscalls (including every syscall with no stub in the
//!   image) → `SECCOMP_RET_KILL`;
//! * callable **sensitive** syscalls → `SECCOMP_RET_TRACE` (monitor
//!   verifies the three contexts);
//! * callable non-sensitive syscalls → `SECCOMP_RET_ALLOW`.

use bastion_compiler::ContextMetadata;
use bastion_kernel::{SeccompAction, SeccompFilter};

/// Builds the per-application filter from metadata.
pub fn build_filter(md: &ContextMetadata) -> SeccompFilter {
    build_filter_with_trace(md, true)
}

/// Builds the filter with or without tracing of sensitive syscalls.
///
/// `trace = false` produces the paper's Table 7 row-1 configuration
/// ("seccomp hook only"): not-callable syscalls are still killed, but
/// callable sensitive syscalls run without stopping for the monitor —
/// isolating the pure BPF-evaluation cost.
pub fn build_filter_with_trace(md: &ContextMetadata, trace: bool) -> SeccompFilter {
    let mut f = SeccompFilter::new(SeccompAction::Kill);
    for (&nr, class) in &md.syscall_classes {
        if !class.callable() {
            continue; // stays at the Kill default
        }
        if trace && md.sensitive_nrs.contains(&nr) {
            f.set(nr, SeccompAction::Trace);
        } else {
            f.set(nr, SeccompAction::Allow);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_compiler::BastionCompiler;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{sysno, Operand, Ty};

    fn metadata() -> ContextMetadata {
        let mut mb = ModuleBuilder::new("t");
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let write = mb.declare_syscall_stub("write", sysno::WRITE, 3);
        let _mprotect = mb.declare_syscall_stub("mprotect", sysno::MPROTECT, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let z = Operand::Imm(0);
        let _ = f.call_direct(execve, &[z, z, z]);
        let _ = f.call_direct(write, &[z, z, z]);
        f.ret(Some(z));
        f.finish();
        BastionCompiler::new()
            .compile(mb.finish())
            .expect("three-stub filter fixture compiles")
            .metadata
    }

    #[test]
    fn filter_actions_follow_call_type_classes() {
        let f = build_filter(&metadata());
        // Used sensitive syscall → trace.
        assert_eq!(f.eval(sysno::EXECVE), SeccompAction::Trace);
        // Used non-sensitive syscall → allow.
        assert_eq!(f.eval(sysno::WRITE), SeccompAction::Allow);
        // Present-but-unused stub → not-callable → kill.
        assert_eq!(f.eval(sysno::MPROTECT), SeccompAction::Kill);
        // Absent syscall → kill by default.
        assert_eq!(f.eval(sysno::PTRACE), SeccompAction::Kill);
        assert_eq!(f.eval(sysno::SETUID), SeccompAction::Kill);
    }
}
