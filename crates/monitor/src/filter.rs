//! seccomp filter construction from call-type metadata (paper §7.1).
//!
//! This is the **authoritative default-action policy** (the mechanism in
//! `kernel/src/seccomp.rs` is caller-agnostic): the filter is built with
//! a fail-closed `Kill` default, and every `Allow` is an explicit
//! per-number rule —
//!
//! * syscalls absent from the CT table, plus present-but-not-callable
//!   ones → `SECCOMP_RET_KILL` (the default; no rule needed);
//! * callable **sensitive** syscalls → `SECCOMP_RET_TRACE` (monitor
//!   verifies the three contexts), or the prefiltered variant when a
//!   tier-1 check program is installed (DESIGN.md §6g);
//! * callable non-sensitive syscalls → `SECCOMP_RET_ALLOW`.

use bastion_compiler::ContextMetadata;
use bastion_kernel::{SeccompAction, SeccompFilter};

/// Builds the per-application filter from metadata.
pub fn build_filter(md: &ContextMetadata) -> SeccompFilter {
    build_filter_with_trace(md, true)
}

/// Builds the filter with or without tracing of sensitive syscalls.
///
/// `trace = false` produces the paper's Table 7 row-1 configuration
/// ("seccomp hook only"): not-callable syscalls are still killed, but
/// callable sensitive syscalls run without stopping for the monitor —
/// isolating the pure BPF-evaluation cost.
pub fn build_filter_with_trace(md: &ContextMetadata, trace: bool) -> SeccompFilter {
    build_filter_with_mode(md, trace, false)
}

/// Builds the filter, optionally marking traced syscalls for tier-1
/// prefiltering: the world then evaluates the attached tracer's compiled
/// check program at classify time and only stops the process on
/// escalation. The allow/kill structure is identical either way — the
/// prefilter only changes *how* a trace verdict is served.
pub fn build_filter_with_mode(md: &ContextMetadata, trace: bool, prefilter: bool) -> SeccompFilter {
    let mut f = SeccompFilter::new(SeccompAction::Kill);
    let trap = if prefilter {
        SeccompAction::TracePrefiltered
    } else {
        SeccompAction::Trace
    };
    for (&nr, class) in &md.syscall_classes {
        if !class.callable() {
            continue; // stays at the Kill default
        }
        if trace && md.sensitive_nrs.contains(&nr) {
            f.set(nr, trap);
        } else {
            f.set(nr, SeccompAction::Allow);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_compiler::BastionCompiler;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{sysno, Operand, Ty};

    fn metadata() -> ContextMetadata {
        let mut mb = ModuleBuilder::new("t");
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let write = mb.declare_syscall_stub("write", sysno::WRITE, 3);
        let _mprotect = mb.declare_syscall_stub("mprotect", sysno::MPROTECT, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let z = Operand::Imm(0);
        let _ = f.call_direct(execve, &[z, z, z]);
        let _ = f.call_direct(write, &[z, z, z]);
        f.ret(Some(z));
        f.finish();
        BastionCompiler::new()
            .compile(mb.finish())
            .expect("three-stub filter fixture compiles")
            .metadata
    }

    #[test]
    fn filter_actions_follow_call_type_classes() {
        let f = build_filter(&metadata());
        // Used sensitive syscall → trace.
        assert_eq!(f.eval(sysno::EXECVE), SeccompAction::Trace);
        // Used non-sensitive syscall → allow.
        assert_eq!(f.eval(sysno::WRITE), SeccompAction::Allow);
        // Present-but-unused stub → not-callable → kill.
        assert_eq!(f.eval(sysno::MPROTECT), SeccompAction::Kill);
        // Absent syscall → kill by default.
        assert_eq!(f.eval(sysno::PTRACE), SeccompAction::Kill);
        assert_eq!(f.eval(sysno::SETUID), SeccompAction::Kill);
    }

    #[test]
    fn prefiltered_filter_only_swaps_the_trace_action() {
        // The prefilter must not change the allow/kill surface: syscalls
        // the CT table never heard of die at the fail-closed Kill default
        // in both modes, and non-sensitive allows stay explicit rules.
        let md = metadata();
        let plain = build_filter_with_mode(&md, true, false);
        let pre = build_filter_with_mode(&md, true, true);
        assert_eq!(pre.eval(sysno::EXECVE), SeccompAction::TracePrefiltered);
        assert_eq!(plain.eval(sysno::EXECVE), SeccompAction::Trace);
        for nr in [
            sysno::WRITE,
            sysno::MPROTECT,
            sysno::PTRACE,
            sysno::SETUID,
            0xFFFF,
        ] {
            assert_eq!(pre.eval(nr), plain.eval(nr), "nr {nr} diverged");
        }
        assert_eq!(
            pre.eval(0xFFFF),
            SeccompAction::Kill,
            "absent nr fails closed"
        );
        assert_eq!(pre.rule_count(), plain.rule_count());
    }
}
