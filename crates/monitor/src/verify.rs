//! Context verification at a trapped syscall (paper §7.2–§7.4).

use crate::{ContextKind, Monitor};
use bastion_compiler::metadata::{ArgMeta, CallsiteKind};
use bastion_ir::CALL_SIZE;
use bastion_kernel::{Regs, Tracee};
use bastion_vm::ShadowTable;

type Violation = (ContextKind, String);

/// Table 7 row 2: fetch the same process state a full verification would
/// (top return address plus the frame chain) without checking anything.
pub(crate) fn fetch_only(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    regs: &Regs,
) -> Result<u64, Violation> {
    let Some(stub) = mon.md.func_of(regs.rip) else {
        return Ok(0);
    };
    let stub_entry = stub.entry;
    // Walk without CF validation (walk_stack honours cfg.control_flow).
    let frames = walk_stack(mon, tracee, stub_entry, regs.fp)?;
    Ok(frames.len() as u64)
}

/// One unwound frame: `(function entry, callsite that created it, fp)`.
/// The callsite is `None` for the bottom (`main`) frame.
struct FrameRec {
    func_entry: u64,
    callsite: Option<u64>,
    fp: u64,
}

/// Verifies all enabled contexts for one trap. Returns the walk depth.
pub(crate) fn verify_trap(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    regs: &Regs,
) -> Result<u64, Violation> {
    let md = &mon.md;
    let nr = regs.nr;

    // Identify the stub the trap occurred in.
    let stub = md
        .func_of(regs.rip)
        .ok_or_else(|| ct_err("trap rip outside known code"))?;
    let stub_entry = stub.entry;

    // ---- Call-Type context (§7.2) ----
    let class = md.syscall_classes.get(&nr).copied();
    // Recover the callsite by "decoding the call instruction" before the
    // return address on the stub frame.
    let ret0 = tracee
        .read_u64(regs.fp + 8)
        .map_err(|e| ct_err(&format!("stack unreadable: {e}")))?;
    let callsite0 = ret0.wrapping_sub(CALL_SIZE);
    if mon.cfg.call_type {
        let Some(class) = class else {
            return Err(ct_err(&format!("syscall {nr} has no call-type entry")));
        };
        if !class.callable() {
            return Err(ct_err(&format!("syscall {nr} is not-callable")));
        }
        match md.callsites.get(&callsite0).map(|c| c.kind) {
            Some(CallsiteKind::Direct(_)) => {
                if !class.allows_direct() {
                    return Err(ct_err(&format!("syscall {nr} not directly-callable")));
                }
            }
            Some(CallsiteKind::Indirect) => {
                if !class.allows_indirect() {
                    return Err(ct_err(&format!("syscall {nr} not indirectly-callable")));
                }
            }
            None => {
                return Err(ct_err(&format!(
                    "no call instruction at {callsite0:#x} reaching syscall {nr}"
                )));
            }
        }
    }

    if !mon.cfg.control_flow && !mon.cfg.arg_integrity {
        return Ok(1);
    }

    // ---- Stack walk (shared by CF §7.3 and AI §7.4) ----
    let frames = walk_stack(mon, tracee, stub_entry, regs.fp)?;

    // ---- Argument Integrity context (§7.4) ----
    if mon.cfg.arg_integrity {
        verify_args(mon, tracee, regs, &frames)?;
    }

    Ok(frames.len() as u64)
}

fn ct_err(msg: &str) -> Violation {
    (ContextKind::CallType, msg.to_string())
}

fn cf_err(msg: String) -> Violation {
    (ContextKind::ControlFlow, msg)
}

fn ai_err(msg: String) -> Violation {
    (ContextKind::ArgIntegrity, msg)
}

/// Unwinds the frame-pointer chain, validating callee→caller pairs when
/// the Control-Flow context is enabled. The walk terminates at `main`
/// (null return address) or at the first indirect callsite, whose partial
/// trace must be permitted (paper: "verifies the partial stack trace
/// encountered matches the expected one derived at compile time").
fn walk_stack(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    stub_entry: u64,
    trap_fp: u64,
) -> Result<Vec<FrameRec>, Violation> {
    let md = &mon.md;
    let cf = mon.cfg.control_flow;
    let mut frames = Vec::new();
    let mut cur_entry = stub_entry;
    let mut cur_fp = trap_fp;
    // Pairwise callee→caller validation is *strict* until the first
    // legitimate indirect entry — the boundary of the compile-time
    // "partial stack trace" (§7.3). Past it, frames are checked for
    // structural consistency and legal indirect entries only (COOP-style
    // chains through legitimate address-taken handlers are exactly the
    // flows the paper says bypass the Control-Flow context, Table 6).
    let mut strict = true;

    for _ in 0..128 {
        let ret = tracee
            .read_u64(cur_fp + 8)
            .map_err(|e| cf_err(format!("frame at {cur_fp:#x} unreadable: {e}")))?;
        if ret == 0 {
            // Bottom of the stack: only main's frame terminates here.
            if cf && cur_entry != md.main_entry {
                let name = md
                    .func_of(cur_entry)
                    .map_or("?", |f| f.name.as_str())
                    .to_string();
                return Err(cf_err(format!("stack walk bottomed out in `{name}`, not main")));
            }
            frames.push(FrameRec {
                func_entry: cur_entry,
                callsite: None,
                fp: cur_fp,
            });
            return Ok(frames);
        }
        let callsite = ret.wrapping_sub(CALL_SIZE);
        let Some(cs) = md.callsites.get(&callsite) else {
            if cf {
                return Err(cf_err(format!(
                    "return address {ret:#x} is not preceded by a call"
                )));
            }
            frames.push(FrameRec {
                func_entry: cur_entry,
                callsite: None,
                fp: cur_fp,
            });
            return Ok(frames);
        };
        match cs.kind {
            CallsiteKind::Indirect => {
                // An indirectly-entered frame is legitimate only for an
                // address-taken function inside the syscall-reaching
                // subgraph. The paper ends pairwise verification here and
                // checks that "the partial stack trace encountered matches
                // the expected one derived at compile time" — realized
                // here by continuing the unwind with the indirect-entry
                // constraint applied at every such hop (this is what
                // catches the AOCR Apache hijack of `ap_get_exec_line`,
                // §10.3).
                if cf && !md.indirect_entries.contains(&cur_entry) {
                    let name = md
                        .func_of(cur_entry)
                        .map_or("?", |f| f.name.as_str())
                        .to_string();
                    return Err(cf_err(format!(
                        "`{name}` entered via indirect call but is not a permitted indirect entry"
                    )));
                }
                strict = false;
                frames.push(FrameRec {
                    func_entry: cur_entry,
                    callsite: Some(callsite),
                    fp: cur_fp,
                });
                let saved = tracee
                    .read_u64(cur_fp)
                    .map_err(|e| cf_err(format!("saved fp unreadable: {e}")))?;
                cur_entry = cs.in_func;
                cur_fp = saved;
            }
            CallsiteKind::Direct(target) => {
                if cf {
                    if target != cur_entry {
                        return Err(cf_err(format!(
                            "callsite {callsite:#x} calls {target:#x}, not the unwound callee {cur_entry:#x}"
                        )));
                    }
                    let valid = !strict
                        || md
                            .valid_callers
                            .get(&cur_entry)
                            .is_some_and(|s| s.contains(&callsite));
                    if !valid {
                        return Err(cf_err(format!(
                            "callsite {callsite:#x} is not a valid caller of {cur_entry:#x}"
                        )));
                    }
                }
                frames.push(FrameRec {
                    func_entry: cur_entry,
                    callsite: Some(callsite),
                    fp: cur_fp,
                });
                let saved = tracee
                    .read_u64(cur_fp)
                    .map_err(|e| cf_err(format!("saved fp unreadable: {e}")))?;
                cur_entry = cs.in_func;
                cur_fp = saved;
            }
        }
    }
    Err(cf_err("stack walk exceeded depth limit".into()))
}

/// Verifies argument integrity for the trapped syscall frame and every
/// walked frame above it.
fn verify_args(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    regs: &Regs,
    frames: &[FrameRec],
) -> Result<(), Violation> {
    let md = &mon.md;
    let shadow = ShadowTable::new(tracee.gs_base());

    // 1. The syscall callsite itself: trapped argument registers.
    let syscall_cs = frames
        .first()
        .and_then(|f| f.callsite)
        .ok_or_else(|| ai_err("no callsite for trapped syscall".into()))?;
    let site = md
        .syscall_sites
        .get(&syscall_cs)
        .ok_or_else(|| ai_err(format!("sensitive syscall from unlisted site {syscall_cs:#x}")))?;
    if site.nr != regs.nr {
        return Err(ai_err(format!(
            "callsite registered for syscall {}, trapped {}",
            site.nr, regs.nr
        )));
    }
    let extended = bastion_ir::sysno::extended_positions(regs.nr);
    for (i, am) in site.args.iter().enumerate() {
        let pos = (i + 1) as u8;
        let actual = regs.args[i];
        check_arg(
            mon,
            tracee,
            &shadow,
            syscall_cs,
            pos,
            am,
            actual,
            extended.contains(&pos),
        )?;
    }

    // 2. Frames up the stack: re-validate bound sensitive variables at
    // propagation callsites (Figure 2's `flags` in `foo`). Each walked
    // frame records the call instruction that created it; prop-site
    // metadata is keyed by that same call instruction.
    for callee_f in frames {
        let Some(created_by) = callee_f.callsite else {
            continue;
        };
        let Some(specs) = md.prop_sites.get(&created_by) else {
            continue;
        };
        for (pos, am) in specs {
            match am {
                ArgMeta::Mem => {
                    match shadow
                        .get_binding(&tracee.shared_shadow(), created_by, *pos)
                        .map_err(|e| ai_err(format!("shadow read failed: {e}")))?
                    {
                        Some(bastion_vm::shadow::Binding::Mem(addr)) => {
                            let Some((legit, _)) = shadow
                                .read_value(&tracee.shared_shadow(), addr)
                                .map_err(|e| ai_err(format!("shadow read failed: {e}")))?
                            else {
                                return Err(ai_err(format!(
                                    "no shadow copy for bound variable {addr:#x}"
                                )));
                            };
                            let current = tracee
                                .read_u64(addr)
                                .map_err(|e| ai_err(format!("bound variable unreadable: {e}")))?;
                            if current != legit {
                                return Err(ai_err(format!(
                                    "sensitive variable {addr:#x} corrupted: {current:#x} != shadow {legit:#x}"
                                )));
                            }
                        }
                        Some(bastion_vm::shadow::Binding::Const(_)) | None => {
                            return Err(ai_err(format!(
                                "missing memory binding at prop site {created_by:#x} pos {pos}"
                            )));
                        }
                    }
                }
                ArgMeta::Const(v) => {
                    // The constant was spilled into the callee's parameter
                    // slot; verify it there using frame geometry metadata.
                    let Some(fm) = md.functions.get(&callee_f.func_entry) else {
                        continue;
                    };
                    let idx = *pos as usize - 1;
                    if idx >= fm.slot_offsets.len() {
                        continue;
                    }
                    let slot = callee_f.fp - fm.frame_size + fm.slot_offsets[idx];
                    let cur = tracee
                        .read_u64(slot)
                        .map_err(|e| ai_err(format!("param slot unreadable: {e}")))?;
                    if cur != *v as u64 {
                        return Err(ai_err(format!(
                            "constant argument {pos} of `{}` corrupted: {cur:#x} != {v:#x}",
                            fm.name
                        )));
                    }
                }
                ArgMeta::Global { .. } | ArgMeta::StackAddr | ArgMeta::Opaque => {}
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_arg(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    shadow: &ShadowTable,
    callsite: u64,
    pos: u8,
    am: &ArgMeta,
    actual: u64,
    extended: bool,
) -> Result<(), Violation> {
    match am {
        ArgMeta::Const(v) => {
            if actual != *v as u64 {
                return Err(ai_err(format!(
                    "argument {pos}: {actual:#x} != expected constant {v:#x}"
                )));
            }
        }
        ArgMeta::Mem => {
            let binding = shadow
                .get_binding(&tracee.shared_shadow(), callsite, pos)
                .map_err(|e| ai_err(format!("shadow read failed: {e}")))?;
            match binding {
                Some(bastion_vm::shadow::Binding::Mem(addr)) => {
                    let Some((legit, _)) = shadow
                        .read_value(&tracee.shared_shadow(), addr)
                        .map_err(|e| ai_err(format!("shadow read failed: {e}")))?
                    else {
                        return Err(ai_err(format!(
                            "argument {pos}: no shadow copy for {addr:#x}"
                        )));
                    };
                    if actual != legit {
                        return Err(ai_err(format!(
                            "argument {pos}: {actual:#x} != shadow value {legit:#x}"
                        )));
                    }
                    // Also verify the variable's *current* memory value —
                    // catches corruption landing between the bind and the
                    // trap (the TOCTOU window §6.3.2 cares about).
                    let current = tracee
                        .read_u64(addr)
                        .map_err(|e| ai_err(format!("bound variable unreadable: {e}")))?;
                    if current != legit {
                        return Err(ai_err(format!(
                            "argument {pos}: variable {addr:#x} corrupted after bind                              ({current:#x} != {legit:#x})"
                        )));
                    }
                }
                Some(bastion_vm::shadow::Binding::Const(c)) => {
                    if actual != c as u64 {
                        return Err(ai_err(format!(
                            "argument {pos}: {actual:#x} != bound constant {c:#x}"
                        )));
                    }
                }
                None => {
                    return Err(ai_err(format!("argument {pos}: binding missing")));
                }
            }
            if extended {
                verify_pointee_shadow(tracee, shadow, pos, actual)?;
            }
        }
        ArgMeta::Global { name, expected } => {
            let Some(&sym) = mon.info.globals.get(name) else {
                return Err(ai_err(format!("argument {pos}: unknown symbol `{name}`")));
            };
            if actual != sym {
                return Err(ai_err(format!(
                    "argument {pos}: {actual:#x} != &{name} ({sym:#x})"
                )));
            }
            if let Some(exp) = expected {
                let mut buf = vec![0u8; exp.len()];
                tracee
                    .read_mem(actual, &mut buf)
                    .map_err(|e| ai_err(format!("argument {pos}: pointee unreadable: {e}")))?;
                if &buf != exp {
                    return Err(ai_err(format!(
                        "argument {pos}: pointee of `{name}` corrupted"
                    )));
                }
            }
        }
        ArgMeta::StackAddr => {
            let (lo, hi) = mon.info.stack;
            if actual != 0 && !(lo..hi).contains(&actual) {
                return Err(ai_err(format!(
                    "argument {pos}: {actual:#x} is not a plausible stack address"
                )));
            }
        }
        ArgMeta::Opaque => {}
    }
    Ok(())
}

/// Extended-argument pointee verification: every pointee byte that has a
/// shadow entry must match it (bytes never legitimately written have no
/// entry and are skipped — see DESIGN.md on the missing-shadow policy).
fn verify_pointee_shadow(
    tracee: &mut Tracee<'_>,
    shadow: &ShadowTable,
    pos: u8,
    ptr: u64,
) -> Result<(), Violation> {
    let mut buf = [0u8; 256];
    // Read up to 256 bytes; shorter mapped prefixes are fine.
    let mut n = 0;
    while n < buf.len() {
        let mut b = [0u8; 1];
        if tracee.read_mem(ptr + n as u64, &mut b).is_err() {
            break;
        }
        buf[n] = b[0];
        n += 1;
        if b[0] == 0 {
            break;
        }
    }
    for (i, &byte) in buf[..n].iter().enumerate() {
        let addr = ptr + i as u64;
        if let Some((legit, size)) = shadow
            .read_value(&tracee.shared_shadow(), addr)
            .map_err(|e| ai_err(format!("shadow read failed: {e}")))?
        {
            let legit_byte = (legit & 0xff) as u8;
            if size == 1 && legit_byte != byte {
                return Err(ai_err(format!(
                    "argument {pos}: pointee byte at {addr:#x} corrupted ({byte:#x} != {legit_byte:#x})"
                )));
            }
        }
    }
    Ok(())
}
