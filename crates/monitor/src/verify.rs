//! Context verification at a trapped syscall (paper §7.2–§7.4).
//!
//! Two code paths exist per [`crate::ContextConfig::fast_path`]:
//!
//! * the **legacy path** re-derives every verdict from scratch and fetches
//!   remote state word-by-word (and pointees byte-by-byte) — each access
//!   paying the full `process_vm_readv` base cost;
//! * the **trap fast path** fetches each frame head (saved fp + return
//!   address) in one batched read, fetches pointee buffers in one bounded
//!   prefix read, and memoizes CT and stack-walk verdicts in the
//!   [`crate::cache::VerifyCache`]. Verdicts are identical by construction:
//!   the same state is observed, only fetched and re-checked less often.
//!
//! Every verification stage is bracketed by telemetry spans (DESIGN.md
//! §6e). The spans carry the monitor-time clock (`Tracee::charged`) and
//! cost nothing when tracing is disabled — they never charge virtual
//! cycles, so clean-path trap costs are bit-identical either way.

use crate::cache::ChainHasher;
use crate::{ContextKind, Monitor};
use bastion_compiler::metadata::{ArgMeta, CallsiteKind};
use bastion_ir::CALL_SIZE;
use bastion_kernel::{Regs, Tracee};
use bastion_obs::{self as obs, DenyRule, Phase};
use bastion_vm::shadow::{Binding, ShadowError};
use bastion_vm::{OutOfBounds, ShadowTable};

/// A structured context violation: which context fired, rule-level
/// provenance, optional expected/observed values for comparing rules, and
/// the legacy message body the kill reason renders.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Context that detected the violation.
    pub ctx: ContextKind,
    /// The specific rule that fired.
    pub rule: DenyRule,
    /// Expected value, when the rule compares two quantities.
    pub expected: Option<u64>,
    /// Observed value, when the rule compares two quantities.
    pub observed: Option<u64>,
    /// Legacy message body (everything after the "CT: " prefix).
    pub msg: String,
}

impl Violation {
    /// Builds a violation with no expected/observed payload.
    pub fn new(ctx: ContextKind, rule: DenyRule, msg: impl Into<String>) -> Self {
        Violation {
            ctx,
            rule,
            expected: None,
            observed: None,
            msg: msg.into(),
        }
    }

    /// Attaches the expected/observed pair.
    #[must_use]
    pub fn vals(mut self, expected: u64, observed: u64) -> Self {
        self.expected = Some(expected);
        self.observed = Some(observed);
        self
    }
}

/// The single signed-constant comparison rule. Compiler metadata carries
/// constants as `i64`; trapped registers and parameter slots are raw
/// `u64` bit patterns. Every comparison between the two goes through this
/// two's-complement widening, so `Const(-1)` matches exactly
/// `0xFFFF_FFFF_FFFF_FFFF` — and *only* that pattern: a zero-extended
/// 32-bit forgery (`0x0000_0000_FFFF_FFFF`) must not pass. Scattered
/// ad-hoc `as` casts at each comparison site are how a narrowing cast
/// (`as u32 as u64`) silently sneaks in; keep them all here.
pub(crate) fn const_to_u64(v: i64) -> u64 {
    u64::from_ne_bytes(v.to_ne_bytes())
}

// ---- Substrate resilience (fail-closed policy layer) ----
//
// Every remote access the verification paths make goes through the helpers
// below. On the clean path they are pass-through: one attempt, no extra
// charge, no bookkeeping. Only when an access fails (injected fault or a
// genuinely hostile/unlucky tracee) do retry-with-backoff, strike counting,
// and the degradation ladder engage.

/// Runs one substrate access under the configured bounded
/// retry-with-backoff policy. Exhausting the retries records a substrate
/// strike (the degradation-ladder driver) and surfaces the final error.
fn with_retries<T>(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    mut op: impl FnMut(&mut Tracee<'_>) -> Result<T, OutOfBounds>,
) -> Result<T, OutOfBounds> {
    let pol = mon.cfg.resilience;
    let mut attempt = 0u32;
    loop {
        match op(tracee) {
            Ok(v) => {
                if attempt > 0 {
                    mon.res.borrow_mut().retry_successes += 1;
                }
                return Ok(v);
            }
            Err(e) => {
                if attempt >= pol.max_retries {
                    mon.substrate_strike();
                    return Err(e);
                }
                let seq = mon.stats.traps;
                obs::instant(Phase::Retry, seq, tracee.charged(), u64::from(attempt + 1));
                // Exponential backoff, charged as monitor-side stall time.
                obs::span_begin(Phase::Backoff, seq, tracee.charged());
                tracee.stall(pol.retry_backoff_cycles << attempt.min(8));
                obs::span_end(
                    Phase::Backoff,
                    seq,
                    tracee.charged(),
                    u64::from(attempt + 1),
                );
                obs::counter_add("monitor.retries", 1);
                attempt += 1;
                mon.res.borrow_mut().retries += 1;
            }
        }
    }
}

/// `PTRACE_GETREGS` with retries; the register snapshot is the monitor's
/// entry point into the tracee, so its loss is terminal for the trap.
pub(crate) fn getregs_resilient(mon: &Monitor, tracee: &mut Tracee<'_>) -> Result<Regs, Violation> {
    with_retries(mon, tracee, |t| t.try_getregs()).map_err(|_| {
        fc_err(
            DenyRule::RegsUnreadable,
            "tracee registers unreadable after retries; denying trap".to_string(),
        )
    })
}

/// Watchdog checkpoint: if this trap's verification has charged more
/// cycles than the configured deadline, record the overrun and (policy
/// permitting) deny the trap fail-closed. Checked at every verification
/// stage boundary so a stalled access is caught at the next checkpoint.
fn check_deadline(mon: &Monitor, tracee: &Tracee<'_>) -> Result<(), Violation> {
    let pol = mon.cfg.resilience;
    let Some(deadline) = pol.deadline_cycles else {
        return Ok(());
    };
    if tracee.charged_this_trap() <= deadline {
        return Ok(());
    }
    mon.res.borrow_mut().watchdog_overruns += 1;
    if !pol.deny_on_timeout {
        return Ok(());
    }
    mon.res.borrow_mut().watchdog_denies += 1;
    mon.substrate_strike();
    Err(fc_err(
        DenyRule::WatchdogDeadline,
        format!("trap verification exceeded its {deadline}-cycle deadline"),
    )
    .vals(deadline, tracee.charged_this_trap()))
}

/// Maps a checked-shadow-read failure to a violation; corruption
/// additionally quarantines the shadow table.
fn shadow_fail(mon: &Monitor, e: ShadowError) -> Violation {
    match e {
        ShadowError::Fault(f) => ai_err(
            DenyRule::ShadowReadFault,
            format!("shadow read failed: {f}"),
        ),
        ShadowError::Corrupt { .. } => {
            mon.quarantine_shadow();
            ai_err(
                DenyRule::ShadowCorrupt,
                format!("{e}; shadow table quarantined"),
            )
        }
    }
}

/// Integrity-checked binding lookup.
fn shadow_binding(
    mon: &Monitor,
    tracee: &Tracee<'_>,
    shadow: &ShadowTable,
    callsite: u64,
    pos: u8,
) -> Result<Option<Binding>, Violation> {
    shadow
        .get_binding_checked(&tracee.shared_shadow(), callsite, pos)
        .map_err(|e| shadow_fail(mon, e))
}

/// Integrity-checked shadow-value lookup.
fn shadow_value(
    mon: &Monitor,
    tracee: &Tracee<'_>,
    shadow: &ShadowTable,
    addr: u64,
) -> Result<Option<(u64, u8)>, Violation> {
    shadow
        .read_value_checked(&tracee.shared_shadow(), addr)
        .map_err(|e| shadow_fail(mon, e))
}

/// Table 7 row 2: fetch the same process state a full verification would
/// (top return address plus the frame chain) without checking anything.
pub(crate) fn fetch_only(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    regs: &Regs,
) -> Result<u64, Violation> {
    let Some(stub) = mon.md.func_of(regs.rip) else {
        return Ok(0);
    };
    let stub_entry = stub.entry;
    // Walk without CF validation (walk_stack honours cfg.control_flow).
    let frames = walk_stack(mon, tracee, stub_entry, regs.fp, None)?;
    Ok(frames.len() as u64)
}

/// One unwound frame: `(function entry, callsite that created it, fp)`.
/// The callsite is `None` for the bottom (`main`) frame.
pub(crate) struct FrameRec {
    func_entry: u64,
    callsite: Option<u64>,
    fp: u64,
}

/// Verifies all enabled contexts for one trap. Returns the walk depth.
pub(crate) fn verify_trap(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    regs: &Regs,
) -> Result<u64, Violation> {
    let md = &mon.md;
    let nr = regs.nr;
    let seq = mon.stats.traps;

    // Identify the stub the trap occurred in.
    let stub = md
        .func_of(regs.rip)
        .ok_or_else(|| ct_err(DenyRule::RipOutsideKnownCode, "trap rip outside known code"))?;
    let stub_entry = stub.entry;

    // Recover the callsite by "decoding the call instruction" before the
    // return address on the stub frame. On the fast path the saved frame
    // pointer comes along in the same batched read — the stack walk needs
    // it moments later.
    obs::span_begin(Phase::FrameRead, seq, tracee.charged());
    let fetched = if mon.cfg.fast_path {
        with_retries(mon, tracee, |t| t.read_frame(regs.fp))
            .map_err(|e| ct_err(DenyRule::StackUnreadable, &format!("stack unreadable: {e}")))
            .map(|fr| {
                mon.cache.borrow_mut().batched_frame_reads += 1;
                (Some(fr), fr.1)
            })
    } else {
        with_retries(mon, tracee, |t| t.read_u64(regs.fp + 8))
            .map_err(|e| ct_err(DenyRule::StackUnreadable, &format!("stack unreadable: {e}")))
            .map(|ret| (None, ret))
    };
    obs::span_end(Phase::FrameRead, seq, tracee.charged(), 0);
    let (prefetched, ret0) = fetched?;
    let callsite0 = ret0.wrapping_sub(CALL_SIZE);
    check_deadline(mon, tracee)?;

    // ---- Call-Type context (§7.2) ----
    if mon.cfg.call_type {
        obs::span_begin(Phase::CtCheck, seq, tracee.charged());
        let cached = if mon.cfg.fast_path {
            mon.cache.borrow_mut().ct_lookup(nr, callsite0)
        } else {
            None
        };
        let outcome = match cached {
            Some(verdict) => {
                obs::instant(Phase::CtCacheHit, seq, tracee.charged(), 0);
                verdict
            }
            None => {
                let verdict = check_call_type(mon, nr, callsite0);
                if mon.cfg.fast_path {
                    mon.cache
                        .borrow_mut()
                        .ct_store(nr, callsite0, verdict.clone());
                }
                verdict
            }
        };
        obs::span_end(
            Phase::CtCheck,
            seq,
            tracee.charged(),
            u64::from(outcome.is_err()),
        );
        outcome?;
    }

    if !mon.cfg.control_flow && !mon.cfg.arg_integrity {
        // Walk-free verdict: report depth 0 so CT-only configurations do
        // not pollute the §9.2 depth statistics with phantom walks.
        return Ok(0);
    }

    // ---- Stack walk (shared by CF §7.3 and AI §7.4) ----
    obs::span_begin(Phase::CfWalk, seq, tracee.charged());
    let walked = walk_stack(mon, tracee, stub_entry, regs.fp, prefetched);
    obs::span_end(
        Phase::CfWalk,
        seq,
        tracee.charged(),
        walked.as_ref().map_or(0, |f| f.len() as u64),
    );
    let frames = walked?;
    check_deadline(mon, tracee)?;

    // ---- Argument Integrity context (§7.4) ----
    if mon.cfg.arg_integrity {
        obs::span_begin(Phase::AiDirect, seq, tracee.charged());
        let checked = verify_args(mon, tracee, regs, &frames);
        obs::span_end(
            Phase::AiDirect,
            seq,
            tracee.charged(),
            u64::from(checked.is_err()),
        );
        checked?;
        check_deadline(mon, tracee)?;
    }

    Ok(frames.len() as u64)
}

/// Call-Type verdict for `(nr, callsite0)` — a pure function of metadata
/// and code addresses, which is what makes it cacheable.
fn check_call_type(mon: &Monitor, nr: u32, callsite0: u64) -> Result<(), Violation> {
    let md = &mon.md;
    let Some(class) = md.syscall_classes.get(&nr).copied() else {
        return Err(ct_err(
            DenyRule::NoCallTypeEntry,
            &format!("syscall {nr} has no call-type entry"),
        ));
    };
    if !class.callable() {
        return Err(ct_err(
            DenyRule::NotCallable,
            &format!("syscall {nr} is not-callable"),
        ));
    }
    match md.callsites.get(&callsite0).map(|c| c.kind) {
        Some(CallsiteKind::Direct(_)) => {
            if !class.allows_direct() {
                return Err(ct_err(
                    DenyRule::NotDirectlyCallable,
                    &format!("syscall {nr} not directly-callable"),
                ));
            }
        }
        Some(CallsiteKind::Indirect) => {
            if !class.allows_indirect() {
                return Err(ct_err(
                    DenyRule::NotIndirectlyCallable,
                    &format!("syscall {nr} not indirectly-callable"),
                ));
            }
        }
        None => {
            return Err(ct_err(
                DenyRule::NoCallInstruction,
                &format!("no call instruction at {callsite0:#x} reaching syscall {nr}"),
            ));
        }
    }
    Ok(())
}

fn ct_err(rule: DenyRule, msg: &str) -> Violation {
    Violation::new(ContextKind::CallType, rule, msg)
}

fn fc_err(rule: DenyRule, msg: String) -> Violation {
    Violation::new(ContextKind::FailClosed, rule, msg)
}

fn cf_err(rule: DenyRule, msg: String) -> Violation {
    Violation::new(ContextKind::ControlFlow, rule, msg)
}

fn ai_err(rule: DenyRule, msg: String) -> Violation {
    Violation::new(ContextKind::ArgIntegrity, rule, msg)
}

/// How a raw chain read terminated.
enum ChainEnd {
    /// Null return address: the bottom (`main`) frame.
    Bottom,
    /// A return address not preceded by any known call instruction.
    UnknownCallsite { ret: u64 },
    /// The next frame head could not be fetched.
    Unreadable { fp: u64, err: OutOfBounds },
    /// The 128-frame unwind limit was exceeded.
    DepthLimit,
}

/// Unwinds the frame-pointer chain, validating callee→caller pairs when
/// the Control-Flow context is enabled. The walk terminates at `main`
/// (null return address) or at the first indirect callsite, whose partial
/// trace must be permitted (paper: "verifies the partial stack trace
/// encountered matches the expected one derived at compile time").
///
/// `prefetched` optionally carries the `(saved fp, return address)` pair of
/// the trap frame when the caller already fetched it (fast path).
fn walk_stack(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    stub_entry: u64,
    trap_fp: u64,
    prefetched: Option<(u64, u64)>,
) -> Result<Vec<FrameRec>, Violation> {
    if mon.cfg.fast_path {
        return walk_stack_fast(mon, tracee, stub_entry, trap_fp, prefetched);
    }
    let md = &mon.md;
    let cf = mon.cfg.control_flow;
    let mut frames = Vec::new();
    let mut cur_entry = stub_entry;
    let mut cur_fp = trap_fp;
    // Pairwise callee→caller validation is *strict* until the first
    // legitimate indirect entry — the boundary of the compile-time
    // "partial stack trace" (§7.3). Past it, frames are checked for
    // structural consistency and legal indirect entries only (COOP-style
    // chains through legitimate address-taken handlers are exactly the
    // flows the paper says bypass the Control-Flow context, Table 6).
    let mut strict = true;

    for _ in 0..128 {
        check_deadline(mon, tracee)?;
        let ret = with_retries(mon, tracee, |t| t.read_u64(cur_fp + 8)).map_err(|e| {
            cf_err(
                DenyRule::FrameUnreadable,
                format!("frame at {cur_fp:#x} unreadable: {e}"),
            )
        })?;
        if ret == 0 {
            // Bottom of the stack: only main's frame terminates here.
            if cf && cur_entry != md.main_entry {
                let name = md
                    .func_of(cur_entry)
                    .map_or("?", |f| f.name.as_str())
                    .to_string();
                return Err(cf_err(
                    DenyRule::BottomNotMain,
                    format!("stack walk bottomed out in `{name}`, not main"),
                ));
            }
            frames.push(FrameRec {
                func_entry: cur_entry,
                callsite: None,
                fp: cur_fp,
            });
            return Ok(frames);
        }
        let callsite = ret.wrapping_sub(CALL_SIZE);
        let Some(cs) = md.callsites.get(&callsite) else {
            if cf {
                return Err(cf_err(
                    DenyRule::ReturnNotAfterCall,
                    format!("return address {ret:#x} is not preceded by a call"),
                ));
            }
            frames.push(FrameRec {
                func_entry: cur_entry,
                callsite: None,
                fp: cur_fp,
            });
            return Ok(frames);
        };
        match cs.kind {
            CallsiteKind::Indirect => {
                // An indirectly-entered frame is legitimate only for an
                // address-taken function inside the syscall-reaching
                // subgraph. The paper ends pairwise verification here and
                // checks that "the partial stack trace encountered matches
                // the expected one derived at compile time" — realized
                // here by continuing the unwind with the indirect-entry
                // constraint applied at every such hop (this is what
                // catches the AOCR Apache hijack of `ap_get_exec_line`,
                // §10.3).
                if cf && !md.indirect_entries.contains(&cur_entry) {
                    let name = md
                        .func_of(cur_entry)
                        .map_or("?", |f| f.name.as_str())
                        .to_string();
                    return Err(cf_err(
                        DenyRule::IllegalIndirectEntry,
                        format!(
                            "`{name}` entered via indirect call but is not a permitted indirect entry"
                        ),
                    ));
                }
                strict = false;
                frames.push(FrameRec {
                    func_entry: cur_entry,
                    callsite: Some(callsite),
                    fp: cur_fp,
                });
                let saved = with_retries(mon, tracee, |t| t.read_u64(cur_fp)).map_err(|e| {
                    cf_err(
                        DenyRule::SavedFpUnreadable,
                        format!("saved fp unreadable: {e}"),
                    )
                })?;
                cur_entry = cs.in_func;
                cur_fp = saved;
            }
            CallsiteKind::Direct(target) => {
                if cf {
                    if target != cur_entry {
                        return Err(cf_err(
                            DenyRule::CalleeMismatch,
                            format!(
                                "callsite {callsite:#x} calls {target:#x}, not the unwound callee {cur_entry:#x}"
                            ),
                        )
                        .vals(target, cur_entry));
                    }
                    let valid = !strict
                        || md
                            .valid_callers
                            .get(&cur_entry)
                            .is_some_and(|s| s.contains(&callsite));
                    if !valid {
                        return Err(cf_err(
                            DenyRule::InvalidCaller,
                            format!(
                                "callsite {callsite:#x} is not a valid caller of {cur_entry:#x}"
                            ),
                        ));
                    }
                }
                frames.push(FrameRec {
                    func_entry: cur_entry,
                    callsite: Some(callsite),
                    fp: cur_fp,
                });
                let saved = with_retries(mon, tracee, |t| t.read_u64(cur_fp)).map_err(|e| {
                    cf_err(
                        DenyRule::SavedFpUnreadable,
                        format!("saved fp unreadable: {e}"),
                    )
                })?;
                cur_entry = cs.in_func;
                cur_fp = saved;
            }
        }
    }
    Err(cf_err(
        DenyRule::DepthLimitExceeded,
        "stack walk exceeded depth limit".into(),
    ))
}

/// Fast-path stack walk: fetch the raw frame chain with batched reads,
/// then validate it — via the walk cache when the verdict is a pure
/// function of the chain (AI disabled; argument values legally change
/// between traps with identical chains, so AI runs bypass the cache).
fn walk_stack_fast(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    stub_entry: u64,
    trap_fp: u64,
    prefetched: Option<(u64, u64)>,
) -> Result<Vec<FrameRec>, Violation> {
    let (chain, end) = read_chain(mon, tracee, stub_entry, trap_fp, prefetched);
    if mon.cfg.arg_integrity {
        validate_chain(mon, &chain, &end)?;
        return Ok(chain);
    }
    // The CF verdict (including its message) is determined by the callsite
    // sequence and the terminator, so that is exactly what is hashed — and
    // also kept verbatim as the full cache key the lookup confirms against
    // (the 64-bit hash alone would alias colliding chains).
    let mut chain_key: Vec<u64> = Vec::with_capacity(chain.len() + 3);
    chain_key.push(stub_entry);
    let mut h = ChainHasher::new(stub_entry);
    for f in &chain {
        if let Some(cs) = f.callsite {
            h.push(cs);
            chain_key.push(cs);
        }
    }
    let (tag, payload) = match &end {
        ChainEnd::Bottom => (0, chain.last().map_or(0, |f| f.func_entry)),
        ChainEnd::UnknownCallsite { ret } => (1, *ret),
        ChainEnd::Unreadable { fp, .. } => (2, *fp),
        ChainEnd::DepthLimit => (3, 0),
    };
    h.push(tag);
    h.push(payload);
    chain_key.push(tag);
    chain_key.push(payload);
    let key = h.finish();
    if let Some(verdict) = mon.cache.borrow_mut().walk_lookup(key, &chain_key) {
        obs::instant(Phase::WalkCacheHit, mon.stats.traps, tracee.charged(), 0);
        verdict?;
        return Ok(chain);
    }
    let verdict = validate_chain(mon, &chain, &end);
    mon.cache
        .borrow_mut()
        .walk_store(key, &chain_key, verdict.clone());
    verdict?;
    Ok(chain)
}

/// Fetches the raw frame chain with one batched read per frame, consulting
/// metadata only to know where the chain ends. Performs no verification.
fn read_chain(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    stub_entry: u64,
    trap_fp: u64,
    mut prefetched: Option<(u64, u64)>,
) -> (Vec<FrameRec>, ChainEnd) {
    let md = &mon.md;
    let mut chain = Vec::new();
    let mut cur_entry = stub_entry;
    let mut cur_fp = trap_fp;
    for _ in 0..128 {
        let (saved, ret) = match prefetched.take() {
            Some(fr) => fr,
            None => match tracee.read_frame(cur_fp) {
                Ok(fr) => {
                    mon.cache.borrow_mut().batched_frame_reads += 1;
                    fr
                }
                Err(err) => return (chain, ChainEnd::Unreadable { fp: cur_fp, err }),
            },
        };
        if ret == 0 {
            chain.push(FrameRec {
                func_entry: cur_entry,
                callsite: None,
                fp: cur_fp,
            });
            return (chain, ChainEnd::Bottom);
        }
        let callsite = ret.wrapping_sub(CALL_SIZE);
        let Some(cs) = md.callsites.get(&callsite) else {
            chain.push(FrameRec {
                func_entry: cur_entry,
                callsite: None,
                fp: cur_fp,
            });
            return (chain, ChainEnd::UnknownCallsite { ret });
        };
        chain.push(FrameRec {
            func_entry: cur_entry,
            callsite: Some(callsite),
            fp: cur_fp,
        });
        cur_entry = cs.in_func;
        cur_fp = saved;
    }
    (chain, ChainEnd::DepthLimit)
}

/// Validates a raw chain exactly as the legacy frame-by-frame walk does:
/// pairwise callee→caller checks in frame order, then the terminator. A
/// pure function of `(chain, end)` and metadata — the cacheable half.
fn validate_chain(mon: &Monitor, chain: &[FrameRec], end: &ChainEnd) -> Result<(), Violation> {
    let md = &mon.md;
    let cf = mon.cfg.control_flow;
    let mut strict = true;
    for f in chain {
        // Terminal frames carry no callsite; the terminator covers them.
        let Some(callsite) = f.callsite else { continue };
        // The walker only records callsites it resolved from metadata, so
        // a miss here means the chain and the metadata disagree (e.g. a
        // cached chain outliving a rebind, or corrupted monitor state).
        // That is a verification failure, never a monitor crash.
        let Some(cs) = md.callsites.get(&callsite) else {
            return Err(cf_err(
                DenyRule::UnknownChainCallsite,
                format!("chain frame references unknown callsite {callsite:#x}"),
            ));
        };
        let kind = cs.kind;
        match kind {
            CallsiteKind::Indirect => {
                if cf && !md.indirect_entries.contains(&f.func_entry) {
                    let name = md
                        .func_of(f.func_entry)
                        .map_or("?", |fm| fm.name.as_str())
                        .to_string();
                    return Err(cf_err(
                        DenyRule::IllegalIndirectEntry,
                        format!(
                            "`{name}` entered via indirect call but is not a permitted indirect entry"
                        ),
                    ));
                }
                strict = false;
            }
            CallsiteKind::Direct(target) => {
                if cf {
                    if target != f.func_entry {
                        return Err(cf_err(
                            DenyRule::CalleeMismatch,
                            format!(
                                "callsite {callsite:#x} calls {target:#x}, not the unwound callee {:#x}",
                                f.func_entry
                            ),
                        )
                        .vals(target, f.func_entry));
                    }
                    let valid = !strict
                        || md
                            .valid_callers
                            .get(&f.func_entry)
                            .is_some_and(|s| s.contains(&callsite));
                    if !valid {
                        return Err(cf_err(
                            DenyRule::InvalidCaller,
                            format!(
                                "callsite {callsite:#x} is not a valid caller of {:#x}",
                                f.func_entry
                            ),
                        ));
                    }
                }
            }
        }
    }
    match end {
        ChainEnd::Bottom => {
            // An empty chain with a Bottom terminator cannot happen on the
            // walker's own output, but a malformed cached chain must read
            // as a violation, not a panic inside the monitor.
            let Some(last) = chain.last() else {
                return Err(cf_err(
                    DenyRule::BottomEmptyChain,
                    "stack walk bottomed out without walking any frame".into(),
                ));
            };
            if cf && last.func_entry != md.main_entry {
                let name = md
                    .func_of(last.func_entry)
                    .map_or("?", |fm| fm.name.as_str())
                    .to_string();
                return Err(cf_err(
                    DenyRule::BottomNotMain,
                    format!("stack walk bottomed out in `{name}`, not main"),
                ));
            }
            Ok(())
        }
        ChainEnd::UnknownCallsite { ret } => {
            if cf {
                return Err(cf_err(
                    DenyRule::ReturnNotAfterCall,
                    format!("return address {ret:#x} is not preceded by a call"),
                ));
            }
            Ok(())
        }
        ChainEnd::Unreadable { fp, err } => Err(cf_err(
            DenyRule::FrameUnreadable,
            format!("frame at {fp:#x} unreadable: {err}"),
        )),
        ChainEnd::DepthLimit => Err(cf_err(
            DenyRule::DepthLimitExceeded,
            "stack walk exceeded depth limit".into(),
        )),
    }
}

/// Verifies argument integrity for the trapped syscall frame and every
/// walked frame above it.
fn verify_args(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    regs: &Regs,
    frames: &[FrameRec],
) -> Result<(), Violation> {
    let md = &mon.md;
    let shadow = ShadowTable::new(tracee.gs_base());

    // A quarantined shadow table cannot back any argument claim: fail
    // closed rather than consult known-corrupt state.
    if mon.res.borrow().shadow_quarantined {
        return Err(ai_err(
            DenyRule::ShadowQuarantined,
            "shadow table quarantined; argument integrity unverifiable".into(),
        ));
    }

    // 1. The syscall callsite itself: trapped argument registers.
    let syscall_cs = frames.first().and_then(|f| f.callsite).ok_or_else(|| {
        ai_err(
            DenyRule::NoSyscallCallsite,
            "no callsite for trapped syscall".into(),
        )
    })?;
    let site = md.syscall_sites.get(&syscall_cs).ok_or_else(|| {
        ai_err(
            DenyRule::UnlistedSyscallSite,
            format!("sensitive syscall from unlisted site {syscall_cs:#x}"),
        )
    })?;
    if site.nr != regs.nr {
        return Err(ai_err(
            DenyRule::SysnoMismatch,
            format!(
                "callsite registered for syscall {}, trapped {}",
                site.nr, regs.nr
            ),
        )
        .vals(u64::from(site.nr), u64::from(regs.nr)));
    }
    let extended = bastion_ir::sysno::extended_positions(regs.nr);
    for (i, am) in site.args.iter().enumerate() {
        let pos = (i + 1) as u8;
        let actual = regs.args[i];
        check_arg(
            mon,
            tracee,
            &shadow,
            syscall_cs,
            pos,
            am,
            actual,
            extended.contains(&pos),
        )?;
    }

    // 2. Frames up the stack: re-validate bound sensitive variables at
    // propagation callsites (Figure 2's `flags` in `foo`). Each walked
    // frame records the call instruction that created it; prop-site
    // metadata is keyed by that same call instruction.
    for callee_f in frames {
        let Some(created_by) = callee_f.callsite else {
            continue;
        };
        let Some(specs) = md.prop_sites.get(&created_by) else {
            continue;
        };
        check_deadline(mon, tracee)?;
        for (pos, am) in specs {
            match am {
                ArgMeta::Mem => match shadow_binding(mon, tracee, &shadow, created_by, *pos)? {
                    Some(Binding::Mem(addr)) => {
                        let Some((legit, _)) = shadow_value(mon, tracee, &shadow, addr)? else {
                            return Err(ai_err(
                                DenyRule::NoShadowCopy,
                                format!("no shadow copy for bound variable {addr:#x}"),
                            ));
                        };
                        let current =
                            with_retries(mon, tracee, |t| t.read_u64(addr)).map_err(|e| {
                                ai_err(
                                    DenyRule::BoundVarUnreadable,
                                    format!("bound variable unreadable: {e}"),
                                )
                            })?;
                        if current != legit {
                            return Err(ai_err(
                                DenyRule::SensitiveVarCorrupted,
                                format!(
                                    "sensitive variable {addr:#x} corrupted: {current:#x} != shadow {legit:#x}"
                                ),
                            )
                            .vals(legit, current));
                        }
                    }
                    Some(Binding::Const(_)) | None => {
                        return Err(ai_err(
                            DenyRule::MissingMemBinding,
                            format!(
                                "missing memory binding at prop site {created_by:#x} pos {pos}"
                            ),
                        ));
                    }
                },
                ArgMeta::Const(v) => {
                    // The constant was spilled into the callee's parameter
                    // slot; verify it there using frame geometry metadata.
                    let Some(fm) = md.functions.get(&callee_f.func_entry) else {
                        continue;
                    };
                    let idx = *pos as usize - 1;
                    if idx >= fm.slot_offsets.len() {
                        continue;
                    }
                    let slot = callee_f.fp - fm.frame_size + fm.slot_offsets[idx];
                    let cur = with_retries(mon, tracee, |t| t.read_u64(slot)).map_err(|e| {
                        ai_err(
                            DenyRule::ParamSlotUnreadable,
                            format!("param slot unreadable: {e}"),
                        )
                    })?;
                    if cur != const_to_u64(*v) {
                        return Err(ai_err(
                            DenyRule::ConstParamCorrupted,
                            format!(
                                "constant argument {pos} of `{}` corrupted: {cur:#x} != {v:#x}",
                                fm.name
                            ),
                        )
                        .vals(const_to_u64(*v), cur));
                    }
                }
                ArgMeta::Global { .. } | ArgMeta::StackAddr | ArgMeta::Opaque => {}
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_arg(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    shadow: &ShadowTable,
    callsite: u64,
    pos: u8,
    am: &ArgMeta,
    actual: u64,
    extended: bool,
) -> Result<(), Violation> {
    match am {
        ArgMeta::Const(v) => {
            if actual != const_to_u64(*v) {
                return Err(ai_err(
                    DenyRule::ConstArgMismatch,
                    format!("argument {pos}: {actual:#x} != expected constant {v:#x}"),
                )
                .vals(const_to_u64(*v), actual));
            }
        }
        ArgMeta::Mem => {
            let binding = shadow_binding(mon, tracee, shadow, callsite, pos)?;
            match binding {
                Some(Binding::Mem(addr)) => {
                    let Some((legit, _)) = shadow_value(mon, tracee, shadow, addr)? else {
                        return Err(ai_err(
                            DenyRule::NoShadowCopy,
                            format!("argument {pos}: no shadow copy for {addr:#x}"),
                        ));
                    };
                    if actual != legit {
                        return Err(ai_err(
                            DenyRule::ShadowValueMismatch,
                            format!("argument {pos}: {actual:#x} != shadow value {legit:#x}"),
                        )
                        .vals(legit, actual));
                    }
                    // Also verify the variable's *current* memory value —
                    // catches corruption landing between the bind and the
                    // trap (the TOCTOU window §6.3.2 cares about).
                    let current = with_retries(mon, tracee, |t| t.read_u64(addr)).map_err(|e| {
                        ai_err(
                            DenyRule::BoundVarUnreadable,
                            format!("bound variable unreadable: {e}"),
                        )
                    })?;
                    if current != legit {
                        return Err(ai_err(
                            DenyRule::CorruptedAfterBind,
                            format!(
                                "argument {pos}: variable {addr:#x} corrupted after bind ({current:#x} != {legit:#x})"
                            ),
                        )
                        .vals(legit, current));
                    }
                }
                Some(Binding::Const(c)) => {
                    if actual != const_to_u64(c) {
                        return Err(ai_err(
                            DenyRule::BoundConstMismatch,
                            format!("argument {pos}: {actual:#x} != bound constant {c:#x}"),
                        )
                        .vals(const_to_u64(c), actual));
                    }
                }
                None => {
                    return Err(ai_err(
                        DenyRule::BindingMissing,
                        format!("argument {pos}: binding missing"),
                    ));
                }
            }
            if extended {
                let seq = mon.stats.traps;
                obs::span_begin(Phase::AiExtended, seq, tracee.charged());
                let probed = verify_pointee_shadow(mon, tracee, shadow, pos, actual);
                obs::span_end(
                    Phase::AiExtended,
                    seq,
                    tracee.charged(),
                    u64::from(probed.is_err()),
                );
                probed?;
            }
        }
        ArgMeta::Global { name, expected } => {
            let Some(&sym) = mon.info.globals.get(name) else {
                return Err(ai_err(
                    DenyRule::UnknownSymbol,
                    format!("argument {pos}: unknown symbol `{name}`"),
                ));
            };
            if actual != sym {
                return Err(ai_err(
                    DenyRule::GlobalAddrMismatch,
                    format!("argument {pos}: {actual:#x} != &{name} ({sym:#x})"),
                )
                .vals(sym, actual));
            }
            if let Some(exp) = expected {
                let mut buf = vec![0u8; exp.len()];
                with_retries(mon, tracee, |t| t.read_mem(actual, &mut buf)).map_err(|e| {
                    ai_err(
                        DenyRule::PointeeUnreadable,
                        format!("argument {pos}: pointee unreadable: {e}"),
                    )
                })?;
                if &buf != exp {
                    return Err(ai_err(
                        DenyRule::GlobalPointeeCorrupted,
                        format!("argument {pos}: pointee of `{name}` corrupted"),
                    ));
                }
            }
        }
        ArgMeta::StackAddr => {
            let (lo, hi) = mon.info.stack;
            if actual != 0 && !(lo..hi).contains(&actual) {
                return Err(ai_err(
                    DenyRule::StackAddrImplausible,
                    format!("argument {pos}: {actual:#x} is not a plausible stack address"),
                ));
            }
        }
        ArgMeta::Opaque => {}
    }
    Ok(())
}

/// Extended-argument pointee verification: every pointee byte that has a
/// shadow entry must match it (bytes never legitimately written have no
/// entry and are skipped — see DESIGN.md on the missing-shadow policy).
fn verify_pointee_shadow(
    mon: &Monitor,
    tracee: &mut Tracee<'_>,
    shadow: &ShadowTable,
    pos: u8,
    ptr: u64,
) -> Result<(), Violation> {
    let mut buf = [0u8; 256];
    // Read up to 256 bytes; shorter mapped prefixes are fine. The buffer is
    // scanned up to and including the first NUL, like the legacy loop.
    let (n, nul_found) = if mon.cfg.fast_path {
        // One bounded prefix read instead of a charged read per byte.
        mon.cache.borrow_mut().batched_pointee_reads += 1;
        let mapped =
            with_retries(mon, tracee, |t| t.read_mem_prefix(ptr, &mut buf)).map_err(|e| {
                ai_err(
                    DenyRule::PointeeUnreadable,
                    format!("argument {pos}: pointee unreadable: {e}"),
                )
            })?;
        let nul = buf[..mapped].iter().position(|&b| b == 0);
        (nul.map_or(mapped, |z| z + 1), nul.is_some())
    } else {
        let mut n = 0;
        let mut nul = false;
        while n < buf.len() {
            let mut b = [0u8; 1];
            // Deliberately not retried: a failed byte read is the expected
            // terminator of a string running to the end of its mapping.
            if tracee.read_mem(ptr + n as u64, &mut b).is_err() {
                break;
            }
            buf[n] = b[0];
            n += 1;
            if b[0] == 0 {
                nul = true;
                break;
            }
        }
        (n, nul)
    };
    for (i, &byte) in buf[..n].iter().enumerate() {
        let addr = ptr + i as u64;
        if let Some((legit, size)) = shadow_value(mon, tracee, shadow, addr)? {
            let legit_byte = (legit & 0xff) as u8;
            if size == 1 && legit_byte != byte {
                return Err(ai_err(
                    DenyRule::PointeeByteCorrupted,
                    format!(
                        "argument {pos}: pointee byte at {addr:#x} corrupted ({byte:#x} != {legit_byte:#x})"
                    ),
                )
                .vals(u64::from(legit_byte), u64::from(byte)));
            }
        }
    }
    // The scan read real bytes and then hit the end of the mapping with no
    // terminator: the pointee provably runs off its mapping (`ptr + n` is
    // the first unmapped byte). Historically the failed last-byte read
    // just ended the loop and the truncated window could pass as a clean
    // string; that is a deterministic property of the tracee's memory, so
    // it gets a deterministic deny with provenance — identically on the
    // fast (prefix-read) and legacy (per-byte) paths.
    if !nul_found && n > 0 && n < buf.len() {
        return Err(ai_err(
            DenyRule::PointeeRunsOffMapping,
            format!(
                "argument {pos}: pointee at {ptr:#x} runs off its mapping at {:#x} with no terminator",
                ptr + n as u64
            ),
        )
        .vals(ptr, ptr + n as u64));
    }
    // Nothing was readable at all (`n == 0`: torn read, racing unmap, or a
    // wild pointer): bytes past the window were never compared against
    // their shadow entries. If any of them IS shadow-backed, a recorded
    // byte escaped verification — deny rather than trust the empty window.
    if !nul_found && n < buf.len() {
        for i in n..buf.len() {
            if shadow_value(mon, tracee, shadow, ptr + i as u64)?.is_some() {
                return Err(ai_err(
                    DenyRule::PointeeTailUnverifiable,
                    format!(
                        "argument {pos}: shadow-backed pointee bytes past {:#x} are unreadable",
                        ptr + n as u64
                    ),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ContextConfig, LaunchInfo, Monitor};
    use bastion_compiler::BastionCompiler;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{sysno, Operand, Ty};
    use bastion_vm::{CostModel, Image, Machine};
    use std::sync::Arc;

    // ---- the single signed-constant comparison rule ----

    #[test]
    fn const_widening_is_twos_complement() {
        assert_eq!(const_to_u64(-1), u64::MAX);
        assert_eq!(const_to_u64(0), 0);
        assert_eq!(const_to_u64(i64::MIN), 0x8000_0000_0000_0000);
        assert_eq!(const_to_u64(0x21), 0x21);
    }

    #[test]
    fn zero_extended_forgery_does_not_match_negative_constant() {
        // The historical bug class: a narrowing cast would compare
        // Const(-1) against the low 32 bits only, letting a forged
        // 0x0000_0000_FFFF_FFFF register pass as the legitimate -1.
        assert_ne!(const_to_u64(-1), 0xFFFF_FFFFu64);
        assert_ne!(const_to_u64(-2), const_to_u64(-2) as u32 as u64);
    }

    fn fixture() -> (Arc<Image>, Monitor, Machine) {
        let mut mb = ModuleBuilder::new("fx");
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let z = Operand::Imm(0);
        let _ = f.call_direct(execve, &[z, z, z]);
        f.ret(Some(z));
        f.finish();
        let out = BastionCompiler::new().compile(mb.finish()).unwrap();
        let image = Arc::new(Image::load(out.module).unwrap());
        let info = LaunchInfo::from_image(&image, &out.metadata);
        let mon = Monitor::new(&out.metadata, ContextConfig::full(), info);
        let machine = Machine::new(image.clone(), CostModel::default());
        (image, mon, machine)
    }

    /// Satellite regression: an AI `Const(-1)` predicate accepts exactly
    /// the two's-complement widening and denies the 32-bit forgery.
    #[test]
    fn negative_constant_arg_accepts_widened_rejects_forged() {
        let (_image, mon, machine) = fixture();
        let mut charge = 0u64;
        let mut tracee = Tracee::new(&machine, 1, &mut charge);
        let shadow = ShadowTable::new(tracee.gs_base());
        let am = ArgMeta::Const(-1);
        assert!(check_arg(&mon, &mut tracee, &shadow, 0x1000, 5, &am, u64::MAX, false).is_ok());
        let err = check_arg(
            &mon,
            &mut tracee,
            &shadow,
            0x1000,
            5,
            &am,
            0xFFFF_FFFF,
            false,
        )
        .expect_err("zero-extended forgery must be denied");
        assert_eq!(err.rule, DenyRule::ConstArgMismatch);
        assert_eq!(err.expected, Some(u64::MAX));
        assert_eq!(err.observed, Some(0xFFFF_FFFF));
    }

    // ---- extended-pointee mapping-boundary probe ----

    /// A pointee that runs to the end of its mapping with no terminator is
    /// a deterministic deny with provenance — on both fetch paths.
    #[test]
    fn pointee_running_off_its_mapping_is_denied_on_both_paths() {
        let (_image, mut mon, mut machine) = fixture();
        // One private page; the last 16 bytes hold 'A's and the string
        // runs straight into the unmapped page after it.
        let base = 0x6100_0000_0000u64;
        machine.mem.map_region(base, 0x1000);
        let tail = base + 0x1000 - 16;
        machine.mem.write_unchecked(tail, &[b'A'; 16]);

        for fast in [true, false] {
            mon.cfg.fast_path = fast;
            let mut charge = 0u64;
            let mut tracee = Tracee::new(&machine, 1, &mut charge);
            let shadow = ShadowTable::new(tracee.gs_base());
            let err = verify_pointee_shadow(&mon, &mut tracee, &shadow, 1, tail)
                .expect_err("unterminated string at a mapping edge must be denied");
            assert_eq!(
                err.rule,
                DenyRule::PointeeRunsOffMapping,
                "fast_path={fast}"
            );
            assert_eq!(err.expected, Some(tail), "fast_path={fast}");
            assert_eq!(err.observed, Some(base + 0x1000), "fast_path={fast}");
            assert_eq!(
                err.msg,
                format!(
                    "argument 1: pointee at {tail:#x} runs off its mapping at {:#x} with no terminator",
                    base + 0x1000
                ),
                "deny string must be identical on both paths"
            );
        }
    }

    /// Control: the same placement with a NUL inside the mapping passes.
    #[test]
    fn terminated_string_at_mapping_edge_passes_both_paths() {
        let (_image, mut mon, mut machine) = fixture();
        let base = 0x6200_0000_0000u64;
        machine.mem.map_region(base, 0x1000);
        let tail = base + 0x1000 - 16;
        let mut bytes = [b'A'; 16];
        bytes[15] = 0;
        machine.mem.write_unchecked(tail, &bytes);
        for fast in [true, false] {
            mon.cfg.fast_path = fast;
            let mut charge = 0u64;
            let mut tracee = Tracee::new(&machine, 1, &mut charge);
            let shadow = ShadowTable::new(tracee.gs_base());
            assert!(
                verify_pointee_shadow(&mon, &mut tracee, &shadow, 1, tail).is_ok(),
                "fast_path={fast}"
            );
        }
    }
}
