//! # bastion-monitor
//!
//! The BASTION runtime monitor (paper §7): a separate "process" attached to
//! the protected application through the kernel's seccomp/ptrace layer,
//! enforcing the three system call contexts at every trapped sensitive
//! syscall:
//!
//! 1. **Call-Type** (§7.2) — the syscall number must be callable at all,
//!    and the callsite reaching the stub (recovered by decoding the call
//!    instruction before the return address, i.e. `retaddr - CALL_SIZE`)
//!    must use a permitted calling convention (direct vs indirect);
//! 2. **Control-Flow** (§7.3) — the frame-pointer chain is unwound and
//!    every callee→caller pair is checked against compiler metadata, until
//!    `main` or a legitimate indirect entry terminates the walk;
//! 3. **Argument Integrity** (§7.4) — trapped argument registers are
//!    compared against constants and shadow-memory copies; extended
//!    arguments additionally have their pointee bytes verified; frames up
//!    the stack have their bound sensitive variables re-validated.
//!
//! The monitor implements [`bastion_kernel::Tracer`] and pays virtual-cycle
//! costs for every `ptrace`/`process_vm_readv` access, so its overhead is
//! measurable exactly as in the paper. Shadow-table reads are free (the
//! shadow region is a shared mapping, §7.1).

pub mod cache;
pub mod filter;
pub mod prefilter;
pub mod verify;

pub use filter::{build_filter, build_filter_with_mode, build_filter_with_trace};

use bastion_compiler::ContextMetadata;
use bastion_kernel::{EscalateReason, Pid, PrefilterVerdict, TraceVerdict, Tracee, Tracer};
use bastion_obs::{self as obs, DenyContext, DenyRecord, FaultCtx, FlightEntry, Phase};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::HashMap;

thread_local! {
    /// When set, [`protect`] builds plain-`Trace` filters: every sensitive
    /// trap stops for the full monitor and tier 1 never runs. This is the
    /// differential oracle's "off" switch (the `--no-prefilter` CLI flag),
    /// mirroring the kernel's thread-local legacy-interpreter toggle.
    static NO_PREFILTER: Cell<bool> = const { Cell::new(false) };
}

/// Forces (or stops forcing) tier-2-only verification for worlds protected
/// on this thread.
pub fn set_thread_no_prefilter(on: bool) {
    NO_PREFILTER.with(|c| c.set(on));
}

/// Whether tier-2-only verification is forced on this thread.
pub fn thread_no_prefilter() -> bool {
    NO_PREFILTER.with(|c| c.get())
}

/// RAII guard for [`set_thread_no_prefilter`]; restores the previous value
/// on drop so nested scopes compose.
pub struct NoPrefilterGuard {
    prev: bool,
}

impl NoPrefilterGuard {
    /// Sets the thread-local no-prefilter flag for the guard's lifetime.
    pub fn new(on: bool) -> Self {
        let prev = thread_no_prefilter();
        set_thread_no_prefilter(on);
        NoPrefilterGuard { prev }
    }
}

impl Drop for NoPrefilterGuard {
    fn drop(&mut self) {
        set_thread_no_prefilter(self.prev);
    }
}

/// Resilience policy: how the monitor reacts when its *substrate* (ptrace
/// register fetches, `process_vm_readv` remote reads, the shared shadow
/// mapping) misbehaves. Everything here is zero-cost on the clean path:
/// retries and backoff only run after a failed access, and the deadline is
/// off by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resilience {
    /// Retries per substrate access before the error is terminal (covers
    /// transient `ESRCH`/`EAGAIN`-style failures).
    pub max_retries: u32,
    /// Virtual-cycle backoff charged before the first retry; doubles each
    /// further attempt.
    pub retry_backoff_cycles: u64,
    /// Per-trap verification deadline (watchdog) in virtual cycles;
    /// `None` disables the watchdog.
    pub deadline_cycles: Option<u64>,
    /// Deny the trap when the deadline is exceeded (`true`, fail-closed)
    /// or merely record the overrun (`false`, observe-only).
    pub deny_on_timeout: bool,
    /// Substrate strikes (exhausted retries, watchdog overruns, shadow
    /// corruption) before the monitor drops to `Degraded`.
    pub degrade_after: u32,
    /// Strikes before the monitor drops to `FailClosed`.
    pub fail_closed_after: u32,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            max_retries: 2,
            retry_backoff_cycles: 500,
            deadline_cycles: None,
            deny_on_timeout: true,
            degrade_after: 3,
            fail_closed_after: 6,
        }
    }
}

impl Resilience {
    /// A watchdogged policy: like the default but with a per-trap
    /// verification deadline.
    pub fn with_deadline(cycles: u64) -> Self {
        Resilience {
            deadline_cycles: Some(cycles),
            ..Resilience::default()
        }
    }
}

/// The monitor's degradation ladder. Ordered: a monitor only ever moves
/// *down* the ladder (toward fail-closed), never back up within a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MonitorMode {
    /// All configured contexts verified normally.
    #[default]
    Full,
    /// The substrate is unreliable: contexts that depend on deep remote
    /// reads (CF walks, AI shadow checks) are denied outright; Call-Type —
    /// which needs only the one frame-head read — is still verified.
    Degraded,
    /// The substrate is untrusted: every trapped sensitive syscall is
    /// denied without touching the tracee.
    FailClosed,
}

impl MonitorMode {
    /// Human-readable rung name for stats output.
    pub fn label(self) -> &'static str {
        match self {
            MonitorMode::Full => "full",
            MonitorMode::Degraded => "degraded",
            MonitorMode::FailClosed => "fail-closed",
        }
    }

    /// Stable small-integer rung for compact surfaces (flight-recorder
    /// entries, `bastion top`): 0 = full, 1 = degraded, 2 = fail-closed.
    pub fn rung(self) -> u8 {
        match self {
            MonitorMode::Full => 0,
            MonitorMode::Degraded => 1,
            MonitorMode::FailClosed => 2,
        }
    }
}

/// Which contexts the monitor enforces (the Figure 3 ablation axis:
/// CT / CT+CF / CT+CF+AI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextConfig {
    /// Enforce the Call-Type context.
    pub call_type: bool,
    /// Enforce the Control-Flow context.
    pub control_flow: bool,
    /// Enforce the Argument Integrity context.
    pub arg_integrity: bool,
    /// Fetch registers and walk the stack without verifying anything —
    /// Table 7's "fetch process state" row, isolating the ptrace cost.
    pub fetch_state: bool,
    /// Use the trap fast path: batched frame/pointee remote reads and the
    /// per-callsite verification cache (see [`cache`]). Off reproduces the
    /// original per-word, re-derive-everything trap cost for ablations.
    pub fast_path: bool,
    /// Substrate-failure policy (retry/backoff, watchdog, degradation
    /// ladder).
    pub resilience: Resilience,
    /// Evaluate the compiled tier-1 prefilter at seccomp-classify time
    /// (DESIGN.md §6g): clean traps are proven equivalent to a monitor
    /// Allow without a ptrace stop; everything else escalates to the
    /// authoritative monitor. Default-on only for the full configuration;
    /// [`protect`] additionally disables it under a watchdog deadline
    /// (tier-1 traps charge almost nothing, which would hollow out the
    /// deadline semantics) and under the thread-local
    /// [`set_thread_no_prefilter`] override.
    pub prefilter: bool,
    /// Differential oracle: after every tier-1 Allow, run the full
    /// tier-2 verification on the same stopped state and panic on any
    /// verdict divergence. Test-only — the extra verification charges
    /// cycles like real monitor work.
    pub prefilter_differential: bool,
}

impl ContextConfig {
    /// All three contexts (full BASTION).
    pub fn full() -> Self {
        ContextConfig {
            call_type: true,
            control_flow: true,
            arg_integrity: true,
            fetch_state: true,
            fast_path: true,
            resilience: Resilience::default(),
            prefilter: true,
            prefilter_differential: false,
        }
    }

    /// Call-Type only. The prefilter stays off outside the full
    /// configuration: ablation rows measure monitor-side trap costs, and
    /// tier-1 hits would hollow out exactly the quantity they isolate.
    pub fn ct() -> Self {
        ContextConfig {
            call_type: true,
            control_flow: false,
            arg_integrity: false,
            fetch_state: true,
            fast_path: true,
            resilience: Resilience::default(),
            prefilter: false,
            prefilter_differential: false,
        }
    }

    /// Call-Type + Control-Flow (prefilter off, like [`ContextConfig::ct`]).
    pub fn ct_cf() -> Self {
        ContextConfig {
            call_type: true,
            control_flow: true,
            arg_integrity: false,
            fetch_state: true,
            fast_path: true,
            resilience: Resilience::default(),
            prefilter: false,
            prefilter_differential: false,
        }
    }

    /// Monitor attached but verifying nothing (hook-cost measurement,
    /// Table 7 row 1).
    pub fn hook_only() -> Self {
        ContextConfig {
            call_type: false,
            control_flow: false,
            arg_integrity: false,
            fetch_state: false,
            fast_path: true,
            resilience: Resilience::default(),
            prefilter: false,
            prefilter_differential: false,
        }
    }

    /// Fetch registers and stack state without verification (Table 7
    /// row 2 — the context-switch cost in isolation).
    pub fn fetch_state() -> Self {
        ContextConfig {
            call_type: false,
            control_flow: false,
            arg_integrity: false,
            fetch_state: true,
            fast_path: true,
            resilience: Resilience::default(),
            prefilter: false,
            prefilter_differential: false,
        }
    }

    /// Whether any context is verified.
    pub fn verifies(&self) -> bool {
        self.call_type || self.control_flow || self.arg_integrity
    }

    /// The same configuration with the trap fast path disabled — the
    /// "before" side of the fast-path ablation. The prefilter goes with
    /// it: the ablation isolates monitor-side trap cost, and tier-1 hits
    /// would bypass the very path being measured.
    pub fn without_fast_path(mut self) -> Self {
        self.fast_path = false;
        self.prefilter = false;
        self
    }

    /// The same configuration with the tier-1 prefilter forced on or off.
    pub fn with_prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }

    /// The same configuration with the tier-1/tier-2 differential oracle
    /// enabled (panics on any verdict divergence; test harness use only).
    pub fn with_differential(mut self) -> Self {
        self.prefilter_differential = true;
        self
    }

    /// The same configuration with a different resilience policy.
    pub fn with_resilience(mut self, r: Resilience) -> Self {
        self.resilience = r;
        self
    }
}

/// Which context a violation was detected under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContextKind {
    /// Call-Type context.
    CallType,
    /// Control-Flow context.
    ControlFlow,
    /// Argument Integrity context.
    ArgIntegrity,
    /// Not a context violation in the tracee: the monitor's own substrate
    /// failed (unreadable registers/memory after retries, watchdog
    /// deadline, shadow corruption, degraded/fail-closed mode) and the
    /// fail-closed policy denies the syscall.
    FailClosed,
}

impl ContextKind {
    /// Short label used in kill reasons ("CT", "CF", "AI", "FC").
    pub fn label(self) -> &'static str {
        match self {
            ContextKind::CallType => "CT",
            ContextKind::ControlFlow => "CF",
            ContextKind::ArgIntegrity => "AI",
            ContextKind::FailClosed => "FC",
        }
    }

    /// The observability-layer context tag (same labels, defined in
    /// `bastion-obs` so the audit log does not depend on this crate).
    pub fn deny_context(self) -> DenyContext {
        match self {
            ContextKind::CallType => DenyContext::CallType,
            ContextKind::ControlFlow => DenyContext::ControlFlow,
            ContextKind::ArgIntegrity => DenyContext::ArgIntegrity,
            ContextKind::FailClosed => DenyContext::FailClosed,
        }
    }
}

/// Counters the monitor accumulates (depth statistics back §9.2's
/// "average call-depth is only 5.2 frames").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Traps delivered.
    pub traps: u64,
    /// Violations detected, by context.
    pub ct_violations: u64,
    /// Control-flow violations.
    pub cf_violations: u64,
    /// Argument-integrity violations.
    pub ai_violations: u64,
    /// Total frames walked across all traps.
    pub frames_walked: u64,
    /// Minimum walk depth seen; 0 until a real stack walk has run (walks
    /// are always ≥ 1 frame deep, so 0 unambiguously means "no walk yet").
    pub min_depth: u64,
    /// Maximum walk depth seen.
    pub max_depth: u64,
    /// Virtual cycles spent initializing (metadata load, §9.2 "≈21 ms").
    pub init_cycles: u64,
    /// Portion of `init_cycles` spent compiling the tier-1 check program
    /// (0 when the prefilter is off) — reported separately so steady-state
    /// per-trap cost can be read without the one-time compile charge.
    pub prefilter_compile_cycles: u64,
    /// Call-Type verdicts served from the verification cache.
    pub ct_cache_hits: u64,
    /// Stack-walk verdicts served from the verification cache (full chain
    /// key confirmed equal, not just the 64-bit hash).
    pub walk_cache_hits: u64,
    /// Walk-cache lookups whose hash matched but whose stored chain
    /// differed — aliasing caught by full-key confirmation and served as
    /// misses instead of sharing a verdict across chains.
    pub walk_cache_collisions: u64,
    /// Frame heads fetched with one batched remote read instead of two.
    pub batched_frame_reads: u64,
    /// Pointee buffers fetched with one batched remote read instead of a
    /// per-byte loop.
    pub batched_pointee_reads: u64,
    /// Fail-closed denies: traps denied because the monitor's substrate
    /// failed, not because the tracee violated a context.
    pub fc_violations: u64,
    /// Substrate-access retries performed.
    pub retries: u64,
    /// Retries that recovered the access (transient faults survived).
    pub retry_successes: u64,
    /// Traps denied by the verification-deadline watchdog.
    pub watchdog_denies: u64,
    /// Watchdog overruns observed (counted even when `deny_on_timeout` is
    /// off).
    pub watchdog_overruns: u64,
    /// Substrate strikes accumulated (retry exhaustion, watchdog overruns,
    /// shadow corruption) — the degradation-ladder driver.
    pub substrate_strikes: u64,
    /// Shadow-table entries that failed their integrity checksum.
    pub shadow_quarantines: u64,
    /// Current degradation-ladder rung.
    pub mode: MonitorMode,
    /// Ladder transitions taken (Full→Degraded and Degraded→FailClosed
    /// each count one).
    pub mode_transitions: u64,
    /// Tier-1 prefilter evaluations (every classify of a
    /// `TracePrefiltered` syscall; `traps` still counts all of them).
    pub prefilter_checks: u64,
    /// Tier-1 hits: traps proven clean at classify time, no monitor stop.
    pub prefilter_hits: u64,
    /// Tier-1 escalations to the full monitor.
    pub prefilter_escalations: u64,
    /// Escalations broken down by [`EscalateReason::code`] (grown on
    /// first use; `Vec` because the serde shim has no fixed-array impls).
    pub prefilter_escalations_by_reason: Vec<u64>,
    /// Backing pages resident across the world's page tables when the
    /// stats were collected (snapshot hygiene: all-zero pages are pruned
    /// at checkpoint time, so this tracks live data only).
    pub resident_pages: u64,
    /// Resident pages still shared copy-on-write with a live
    /// [`bastion_kernel::WorldSnapshot`] or fork sibling — memory a warm
    /// restore did not have to copy.
    pub snapshot_shared_pages: u64,
}

impl MonitorStats {
    /// Average stack-walk depth per *monitor-walked* trap. Tier-1 hits
    /// never walk (that is the point), so they are excluded from the §9.2
    /// depth denominator.
    pub fn avg_depth(&self) -> f64 {
        let walked_traps = self.traps.saturating_sub(self.prefilter_hits);
        if walked_traps == 0 {
            0.0
        } else {
            self.frames_walked as f64 / walked_traps as f64
        }
    }

    /// Tier-1 hit rate over all delivered traps (0 when no trap ran).
    pub fn prefilter_hit_rate(&self) -> f64 {
        if self.traps == 0 {
            0.0
        } else {
            self.prefilter_hits as f64 / self.traps as f64
        }
    }

    /// Per-reason escalation counts as `(label, count)` rows, non-zero
    /// entries only, in stable code order.
    pub fn escalations_by_reason(&self) -> Vec<(&'static str, u64)> {
        use EscalateReason as R;
        [
            R::NoPrefilter,
            R::FaultsInstalled,
            R::NonFullMode,
            R::ShadowQuarantine,
            R::FlowMiss,
            R::CtMismatch,
            R::ChainAnomaly,
            R::ArgMismatch,
            R::ExtendedArgs,
            R::ReadFailure,
        ]
        .into_iter()
        .map(|r| {
            let n = self
                .prefilter_escalations_by_reason
                .get(r.code() as usize)
                .copied()
                .unwrap_or(0);
            (r.label(), n)
        })
        .filter(|&(_, n)| n > 0)
        .collect()
    }

    /// Total violations across contexts (fail-closed denies included:
    /// they kill the application just like context violations).
    pub fn violations(&self) -> u64 {
        self.ct_violations + self.cf_violations + self.ai_violations + self.fc_violations
    }
}

/// Mutable resilience state (interior mutability: verification runs behind
/// a shared borrow of the monitor, like the cache).
#[derive(Debug, Clone, Default)]
pub struct ResilienceState {
    /// Current degradation-ladder rung.
    pub mode: MonitorMode,
    /// Substrate strikes accumulated.
    pub strikes: u32,
    /// Whether the shadow table failed integrity checking and is
    /// quarantined (AI unverifiable until restart).
    pub shadow_quarantined: bool,
    /// Retries performed.
    pub retries: u64,
    /// Retries that recovered the access.
    pub retry_successes: u64,
    /// Watchdog denies issued.
    pub watchdog_denies: u64,
    /// Watchdog overruns observed.
    pub watchdog_overruns: u64,
    /// Corrupt shadow entries seen.
    pub quarantines: u64,
    /// Ladder transitions taken.
    pub transitions: u64,
}

/// Information the monitor learns at launch time about the loaded image
/// (symbol addresses and memory geometry — the paper's "ELF, DWARF, and
/// linked library file information").
#[derive(Debug, Clone, Default)]
pub struct LaunchInfo {
    /// Load bias: runtime code base − metadata link base.
    pub load_bias: i64,
    /// Global symbol name → runtime address.
    pub globals: HashMap<String, u64>,
    /// Valid stack range `[base, top)`.
    pub stack: (u64, u64),
    /// Data segment range `[base, end)`.
    pub data: (u64, u64),
}

impl LaunchInfo {
    /// Gathers launch info from a loaded image (the monitor "retrieves
    /// ELF, DWARF, and linked library file information to recover symbol
    /// addresses", §7.1).
    pub fn from_image(image: &bastion_vm::Image, metadata: &ContextMetadata) -> Self {
        let load_bias = image.layout.code_base().raw() as i64 - metadata.link_base as i64;
        let globals = image
            .module
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.clone(), image.global_addrs[i]))
            .collect();
        LaunchInfo {
            load_bias,
            globals,
            stack: (image.stack_base, image.stack_top),
            data: (image.data_base, image.data_end),
        }
    }
}

/// Launches BASTION protection for `pid` in `world`: builds the seccomp
/// filter from call-type metadata, attaches a [`Monitor`] as the tracer,
/// and charges the monitor's initialization cost (§9.2 measures ≈21 ms)
/// to the world clock.
pub fn protect(
    world: &mut bastion_kernel::World,
    pid: bastion_kernel::Pid,
    image: &bastion_vm::Image,
    metadata: &ContextMetadata,
    cfg: ContextConfig,
) {
    // "Hook only" (Table 7 row 1) measures the seccomp cost in isolation:
    // the filter is installed (not-callable syscalls still die) but
    // sensitive syscalls are not stopped for the monitor.
    let trace = cfg.verifies() || cfg.fetch_state;
    let info = LaunchInfo::from_image(image, metadata);
    let mut monitor = Monitor::new(metadata, cfg, info);
    // Tier-1 prefilter: only for verifying configurations, never under a
    // watchdog deadline (tier-1 traps charge almost nothing, which would
    // change what the deadline measures), and subject to the thread-local
    // differential-oracle override.
    let prefiltered = trace
        && cfg.verifies()
        && cfg.prefilter
        && cfg.resilience.deadline_cycles.is_none()
        && !thread_no_prefilter();
    if prefiltered {
        monitor.enable_prefilter();
    }
    world.trace_cycles += monitor.stats.init_cycles;
    let filter = filter::build_filter_with_mode(metadata, trace, prefiltered);
    world.install_seccomp(pid, filter.shared(), trace);
    if trace {
        world.attach_tracer(Box::new(monitor));
    }
}

/// The BASTION runtime monitor. `Clone` is the world-snapshot path
/// ([`bastion_kernel::Tracer::snapshot_box`]): stats, deny log, caches,
/// resilience rung, and the prefilter's per-pid flow state are all
/// structural copies, so a restored world resumes verification exactly
/// where the checkpoint left it.
#[derive(Debug, Clone)]
pub struct Monitor {
    /// Rebased metadata (runtime addresses).
    pub md: ContextMetadata,
    /// Enabled contexts.
    pub cfg: ContextConfig,
    /// Launch-time image information.
    pub info: LaunchInfo,
    /// Statistics.
    pub stats: MonitorStats,
    /// Trap log: (nr, verdict ok?) for diagnostics and tests.
    pub log: Vec<(u32, bool)>,
    /// Deny-provenance audit log: one structured record per deny, in
    /// order. Always populated (not gated by the telemetry enable flag).
    pub deny_log: Vec<DenyRecord>,
    /// Fast-path verification cache (interior mutability: verification
    /// runs behind a shared borrow of the monitor).
    pub cache: std::cell::RefCell<cache::VerifyCache>,
    /// Resilience state: degradation-ladder rung, strikes, retry/watchdog
    /// counters.
    pub res: std::cell::RefCell<ResilienceState>,
    /// Compiled tier-1 check program (`None` until
    /// [`Monitor::enable_prefilter`]).
    pf: Option<prefilter::Prefilter>,
    /// Set when the last prefilter verdict was an escalation, so the
    /// following `on_trap` does not double-count the trap.
    pending_escalation: bool,
}

impl Monitor {
    /// Creates a monitor from compiler metadata and launch-time info.
    ///
    /// Initialization cost is proportional to the metadata size (the paper
    /// measures ≈21 ms for NGINX); it is recorded in
    /// [`MonitorStats::init_cycles`] and added to the world clock by the
    /// harness at attach time.
    pub fn new(metadata: &ContextMetadata, cfg: ContextConfig, info: LaunchInfo) -> Self {
        let md = metadata.rebased(info.load_bias);
        let init_cycles = 200
            + 10 * (md.callsites.len() as u64)
            + 20 * (md.functions.len() as u64)
            + 15 * (md.syscall_sites.len() as u64);
        Monitor {
            md,
            cfg,
            info,
            stats: MonitorStats {
                init_cycles,
                ..MonitorStats::default()
            },
            log: Vec::new(),
            deny_log: Vec::new(),
            cache: std::cell::RefCell::new(cache::VerifyCache::new()),
            res: std::cell::RefCell::new(ResilienceState::default()),
            pf: None,
            pending_escalation: false,
        }
    }

    /// Compiles the tier-1 check program from the (already rebased)
    /// metadata and launch info. Compilation cost joins
    /// [`MonitorStats::init_cycles`] — call before the harness charges it.
    pub fn enable_prefilter(&mut self) {
        let pf = prefilter::Prefilter::compile(&self.md, &self.info, &self.cfg);
        self.stats.prefilter_compile_cycles = pf.compile_cycles();
        self.stats.init_cycles += pf.compile_cycles();
        self.pf = Some(pf);
    }

    /// Whether a compiled tier-1 check program is installed.
    pub fn prefilter_enabled(&self) -> bool {
        self.pf.is_some()
    }

    /// The current degradation-ladder rung.
    pub fn mode(&self) -> MonitorMode {
        self.res.borrow().mode
    }

    /// Records one substrate strike and walks the degradation ladder if
    /// the configured thresholds are crossed. Monotone: the mode only ever
    /// moves toward `FailClosed`.
    pub(crate) fn substrate_strike(&self) {
        let r = &mut *self.res.borrow_mut();
        r.strikes += 1;
        let pol = self.cfg.resilience;
        let target = if r.strikes >= pol.fail_closed_after {
            MonitorMode::FailClosed
        } else if r.strikes >= pol.degrade_after {
            MonitorMode::Degraded
        } else {
            r.mode
        };
        if target > r.mode {
            let steps =
                1 + u64::from(target == MonitorMode::FailClosed && r.mode == MonitorMode::Full);
            r.transitions += steps;
            obs::counter_add("monitor.ladder_transitions", steps);
            r.mode = target;
        }
        obs::counter_add("monitor.substrate_strikes", 1);
    }

    /// Quarantines the shadow table after an integrity failure: AI becomes
    /// unverifiable for the rest of the run, and the corruption counts as
    /// a substrate strike.
    pub(crate) fn quarantine_shadow(&self) {
        {
            let r = &mut *self.res.borrow_mut();
            r.shadow_quarantined = true;
            r.quarantines += 1;
        }
        self.substrate_strike();
    }

    /// Copies cache and resilience counters into the public stats block.
    fn sync_counters(&mut self) {
        let c = self.cache.borrow();
        self.stats.ct_cache_hits = c.ct_hits;
        self.stats.walk_cache_hits = c.walk_hits;
        self.stats.walk_cache_collisions = c.walk_collisions;
        self.stats.batched_frame_reads = c.batched_frame_reads;
        self.stats.batched_pointee_reads = c.batched_pointee_reads;
        drop(c);
        let r = self.res.borrow();
        self.stats.retries = r.retries;
        self.stats.retry_successes = r.retry_successes;
        self.stats.watchdog_denies = r.watchdog_denies;
        self.stats.watchdog_overruns = r.watchdog_overruns;
        self.stats.substrate_strikes = u64::from(r.strikes);
        self.stats.shadow_quarantines = r.quarantines;
        self.stats.mode = r.mode;
        self.stats.mode_transitions = r.transitions;
    }

    /// Converts a structured violation into the kill verdict, appending a
    /// [`DenyRecord`] to the audit log and streaming it to any installed
    /// sink. The rendered reason is byte-identical to the legacy
    /// `"{label}: {msg}"` string.
    fn deny(
        &mut self,
        nr: u32,
        v: verify::Violation,
        vcycles: u64,
        flight: Vec<FlightEntry>,
    ) -> TraceVerdict {
        match v.ctx {
            ContextKind::CallType => self.stats.ct_violations += 1,
            ContextKind::ControlFlow => self.stats.cf_violations += 1,
            ContextKind::ArgIntegrity => self.stats.ai_violations += 1,
            ContextKind::FailClosed => self.stats.fc_violations += 1,
        }
        self.log.push((nr, false));
        let (fault_ctx, ladder_rung) = {
            let r = self.res.borrow();
            (
                FaultCtx {
                    retries: r.retries,
                    strikes: u64::from(r.strikes),
                    watchdog_overruns: r.watchdog_overruns,
                    shadow_quarantined: r.shadow_quarantined,
                },
                r.mode.label().to_string(),
            )
        };
        let rec = DenyRecord {
            trap_seq: self.stats.traps,
            sysno: nr,
            context: v.ctx.deny_context(),
            rule: v.rule,
            expected: v.expected,
            observed: v.observed,
            fault_ctx,
            ladder_rung,
            message: v.msg,
            flight,
        };
        obs::instant(Phase::Deny, rec.trap_seq, vcycles, 0);
        obs::counter_add("monitor.denies", 1);
        obs::emit_deny(&rec);
        let verdict = TraceVerdict::Deny(rec.render());
        self.deny_log.push(rec);
        verdict
    }

    /// Tier-1 gates plus check-program evaluation for one classify. The
    /// gate order is part of the §6g contract: faults and non-`Full`
    /// rungs escalate before tier 1 reads anything, so injected faults
    /// always land on the monitor's resilience ladder.
    fn tier1_verdict(
        &mut self,
        tracee: &mut Tracee<'_>,
        faults_installed: bool,
    ) -> PrefilterVerdict {
        use EscalateReason as R;
        if self.pf.is_none() {
            return PrefilterVerdict::Escalate(R::NoPrefilter);
        }
        if faults_installed {
            return PrefilterVerdict::Escalate(R::FaultsInstalled);
        }
        {
            let r = self.res.borrow();
            if r.mode != MonitorMode::Full {
                return PrefilterVerdict::Escalate(R::NonFullMode);
            }
            if r.shadow_quarantined {
                return PrefilterVerdict::Escalate(R::ShadowQuarantine);
            }
        }
        self.pf.as_mut().expect("checked above").check(tracee)
    }

    /// Differential oracle: tier 1 just allowed this trap, so the full
    /// verification must agree — any deny here is a prefilter soundness
    /// bug and panics the harness.
    fn differential_check(&mut self, tracee: &mut Tracee<'_>) {
        let regs = match verify::getregs_resilient(self, tracee) {
            Ok(r) => r,
            Err(v) => panic!(
                "prefilter divergence: tier 1 allowed a trap whose registers \
                 the monitor cannot read: {}",
                v.msg
            ),
        };
        if let Err(v) = verify::verify_trap(self, tracee, &regs) {
            panic!(
                "prefilter divergence: tier 1 allowed syscall {} that the \
                 monitor denies: {}: {}",
                regs.nr,
                v.ctx.label(),
                v.msg
            );
        }
    }
}

impl Tracer for Monitor {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn snapshot_box(&self) -> Option<Box<dyn bastion_kernel::Tracer>> {
        Some(Box::new(self.clone()))
    }

    fn on_fork(&mut self, parent: Pid, child: Pid) {
        // The child resumes at the parent's program point, so its flow
        // automaton starts from the parent's position.
        if let Some(pf) = self.pf.as_mut() {
            pf.inherit_state(parent, child);
        }
    }

    fn flow_word(&self, pid: Pid) -> u64 {
        self.pf.as_ref().map_or(0, |pf| pf.state_word(pid))
    }

    fn ladder_rung(&self) -> u8 {
        self.res.borrow().mode.rung()
    }

    fn prefilter(&mut self, tracee: &mut Tracee<'_>, faults_installed: bool) -> PrefilterVerdict {
        // Every classify counts as a trap, whichever tier settles it —
        // `traps` stays comparable with prefilter off, and the deny log's
        // `trap_seq` stays aligned with the world's trap counter.
        self.stats.traps += 1;
        self.stats.prefilter_checks += 1;
        let verdict = self.tier1_verdict(tracee, faults_installed);
        match verdict {
            PrefilterVerdict::Allow => {
                self.pending_escalation = false;
                self.stats.prefilter_hits += 1;
                self.log.push((tracee.kernel_regs().nr, true));
                if self.cfg.prefilter_differential {
                    self.differential_check(tracee);
                }
            }
            PrefilterVerdict::Escalate(r) => {
                self.pending_escalation = true;
                self.stats.prefilter_escalations += 1;
                let idx = r.code() as usize;
                if self.stats.prefilter_escalations_by_reason.len() <= idx {
                    self.stats
                        .prefilter_escalations_by_reason
                        .resize(idx + 1, 0);
                }
                self.stats.prefilter_escalations_by_reason[idx] += 1;
            }
        }
        verdict
    }

    fn on_trap(&mut self, tracee: &mut Tracee<'_>) -> TraceVerdict {
        if self.pending_escalation {
            // This stop is the tier-2 half of a classify already counted
            // (and reason-tallied) by `prefilter`.
            self.pending_escalation = false;
        } else {
            self.stats.traps += 1;
        }

        // Non-verifying configurations do not enforce anything, so the
        // degradation ladder does not apply to them.
        if !self.cfg.verifies() {
            let regs = tracee.getregs();
            let nr = regs.nr;
            if self.cfg.fetch_state {
                // Fetch-state configuration: pay for register and stack
                // fetches without verifying (Table 7 row 2).
                let _ = verify::fetch_only(self, tracee, &regs);
            }
            self.log.push((nr, true));
            return TraceVerdict::Allow;
        }

        let mode = self.res.borrow().mode;

        // Fail-closed rung: the substrate is untrusted — deny without
        // touching the tracee at all.
        if mode == MonitorMode::FailClosed {
            let v = self.deny(
                0,
                verify::Violation::new(
                    ContextKind::FailClosed,
                    obs::DenyRule::FailClosedMode,
                    "monitor fail-closed: tracee state untrusted after repeated substrate failures",
                ),
                tracee.charged(),
                tracee.flight_dump(),
            );
            self.sync_counters();
            return v;
        }

        obs::span_begin(Phase::GetRegs, self.stats.traps, tracee.charged());
        let got = verify::getregs_resilient(self, tracee);
        obs::span_end(
            Phase::GetRegs,
            self.stats.traps,
            tracee.charged(),
            u64::from(got.is_err()),
        );
        let regs = match got {
            Ok(r) => r,
            Err(v) => {
                let verdict = self.deny(0, v, tracee.charged(), tracee.flight_dump());
                self.sync_counters();
                return verdict;
            }
        };
        let nr = regs.nr;

        // Degraded rung: contexts needing deep remote reads cannot be
        // trusted; configs that require them fail closed, while Call-Type
        // — one frame-head read — keeps being verified below.
        if mode == MonitorMode::Degraded && (self.cfg.control_flow || self.cfg.arg_integrity) {
            let v = self.deny(
                nr,
                verify::Violation::new(
                    ContextKind::FailClosed,
                    obs::DenyRule::DegradedMode,
                    "monitor degraded: control-flow/argument contexts unverifiable",
                ),
                tracee.charged(),
                tracee.flight_dump(),
            );
            self.sync_counters();
            return v;
        }

        let verdict = match verify::verify_trap(self, tracee, &regs) {
            Ok(depth) => {
                // Depth 0 is a walk-free verdict (CT-only traps); it must
                // not pollute the §9.2 depth statistics.
                if depth > 0 {
                    self.stats.frames_walked += depth;
                    if self.stats.min_depth == 0 || depth < self.stats.min_depth {
                        self.stats.min_depth = depth;
                    }
                    self.stats.max_depth = self.stats.max_depth.max(depth);
                    obs::observe("monitor.walk_depth", depth);
                }
                self.log.push((nr, true));
                TraceVerdict::Allow
            }
            Err(v) => self.deny(nr, v, tracee.charged(), tracee.flight_dump()),
        };
        self.sync_counters();
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets() {
        assert!(ContextConfig::full().arg_integrity);
        assert!(!ContextConfig::ct().control_flow);
        assert!(ContextConfig::ct_cf().control_flow);
        let h = ContextConfig::hook_only();
        assert!(!h.call_type && !h.control_flow && !h.arg_integrity);
    }

    #[test]
    fn stats_avg_depth() {
        let mut s = MonitorStats::default();
        assert_eq!(s.avg_depth(), 0.0);
        s.traps = 4;
        s.frames_walked = 20;
        assert_eq!(s.avg_depth(), 5.0);
        s.ct_violations = 1;
        s.ai_violations = 2;
        assert_eq!(s.violations(), 3);
    }

    #[test]
    fn min_depth_is_zero_before_any_walk() {
        // A freshly created monitor (and one that only ever sees walk-free
        // CT verdicts) must report min_depth 0, not a u64::MAX sentinel —
        // including through serialization.
        let md = bastion_compiler::ContextMetadata::default();
        let m = Monitor::new(&md, ContextConfig::ct(), LaunchInfo::default());
        assert_eq!(m.stats.min_depth, 0);
        let json = serde_json::to_string(&m.stats).expect("MonitorStats serializes");
        assert!(
            !json.contains("18446744073709551615"),
            "sentinel leaked: {json}"
        );
    }

    #[test]
    fn fast_path_toggle() {
        assert!(ContextConfig::full().fast_path);
        let slow = ContextConfig::full().without_fast_path();
        assert!(!slow.fast_path);
        assert!(slow.arg_integrity, "other fields untouched");
    }

    #[test]
    fn context_labels() {
        assert_eq!(ContextKind::CallType.label(), "CT");
        assert_eq!(ContextKind::ControlFlow.label(), "CF");
        assert_eq!(ContextKind::ArgIntegrity.label(), "AI");
    }
}
