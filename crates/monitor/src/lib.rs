//! # bastion-monitor
//!
//! The BASTION runtime monitor (paper §7): a separate "process" attached to
//! the protected application through the kernel's seccomp/ptrace layer,
//! enforcing the three system call contexts at every trapped sensitive
//! syscall:
//!
//! 1. **Call-Type** (§7.2) — the syscall number must be callable at all,
//!    and the callsite reaching the stub (recovered by decoding the call
//!    instruction before the return address, i.e. `retaddr - CALL_SIZE`)
//!    must use a permitted calling convention (direct vs indirect);
//! 2. **Control-Flow** (§7.3) — the frame-pointer chain is unwound and
//!    every callee→caller pair is checked against compiler metadata, until
//!    `main` or a legitimate indirect entry terminates the walk;
//! 3. **Argument Integrity** (§7.4) — trapped argument registers are
//!    compared against constants and shadow-memory copies; extended
//!    arguments additionally have their pointee bytes verified; frames up
//!    the stack have their bound sensitive variables re-validated.
//!
//! The monitor implements [`bastion_kernel::Tracer`] and pays virtual-cycle
//! costs for every `ptrace`/`process_vm_readv` access, so its overhead is
//! measurable exactly as in the paper. Shadow-table reads are free (the
//! shadow region is a shared mapping, §7.1).

pub mod cache;
pub mod filter;
pub mod verify;

pub use filter::{build_filter, build_filter_with_trace};

use bastion_compiler::ContextMetadata;
use bastion_kernel::{TraceVerdict, Tracee, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which contexts the monitor enforces (the Figure 3 ablation axis:
/// CT / CT+CF / CT+CF+AI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextConfig {
    /// Enforce the Call-Type context.
    pub call_type: bool,
    /// Enforce the Control-Flow context.
    pub control_flow: bool,
    /// Enforce the Argument Integrity context.
    pub arg_integrity: bool,
    /// Fetch registers and walk the stack without verifying anything —
    /// Table 7's "fetch process state" row, isolating the ptrace cost.
    pub fetch_state: bool,
    /// Use the trap fast path: batched frame/pointee remote reads and the
    /// per-callsite verification cache (see [`cache`]). Off reproduces the
    /// original per-word, re-derive-everything trap cost for ablations.
    pub fast_path: bool,
}

impl ContextConfig {
    /// All three contexts (full BASTION).
    pub fn full() -> Self {
        ContextConfig {
            call_type: true,
            control_flow: true,
            arg_integrity: true,
            fetch_state: true,
            fast_path: true,
        }
    }

    /// Call-Type only.
    pub fn ct() -> Self {
        ContextConfig {
            call_type: true,
            control_flow: false,
            arg_integrity: false,
            fetch_state: true,
            fast_path: true,
        }
    }

    /// Call-Type + Control-Flow.
    pub fn ct_cf() -> Self {
        ContextConfig {
            call_type: true,
            control_flow: true,
            arg_integrity: false,
            fetch_state: true,
            fast_path: true,
        }
    }

    /// Monitor attached but verifying nothing (hook-cost measurement,
    /// Table 7 row 1).
    pub fn hook_only() -> Self {
        ContextConfig {
            call_type: false,
            control_flow: false,
            arg_integrity: false,
            fetch_state: false,
            fast_path: true,
        }
    }

    /// Fetch registers and stack state without verification (Table 7
    /// row 2 — the context-switch cost in isolation).
    pub fn fetch_state() -> Self {
        ContextConfig {
            call_type: false,
            control_flow: false,
            arg_integrity: false,
            fetch_state: true,
            fast_path: true,
        }
    }

    /// Whether any context is verified.
    pub fn verifies(&self) -> bool {
        self.call_type || self.control_flow || self.arg_integrity
    }

    /// The same configuration with the trap fast path disabled — the
    /// "before" side of the fast-path ablation.
    pub fn without_fast_path(mut self) -> Self {
        self.fast_path = false;
        self
    }
}

/// Which context a violation was detected under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContextKind {
    /// Call-Type context.
    CallType,
    /// Control-Flow context.
    ControlFlow,
    /// Argument Integrity context.
    ArgIntegrity,
}

impl ContextKind {
    /// Short label used in kill reasons ("CT", "CF", "AI").
    pub fn label(self) -> &'static str {
        match self {
            ContextKind::CallType => "CT",
            ContextKind::ControlFlow => "CF",
            ContextKind::ArgIntegrity => "AI",
        }
    }
}

/// Counters the monitor accumulates (depth statistics back §9.2's
/// "average call-depth is only 5.2 frames").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Traps delivered.
    pub traps: u64,
    /// Violations detected, by context.
    pub ct_violations: u64,
    /// Control-flow violations.
    pub cf_violations: u64,
    /// Argument-integrity violations.
    pub ai_violations: u64,
    /// Total frames walked across all traps.
    pub frames_walked: u64,
    /// Minimum walk depth seen; 0 until a real stack walk has run (walks
    /// are always ≥ 1 frame deep, so 0 unambiguously means "no walk yet").
    pub min_depth: u64,
    /// Maximum walk depth seen.
    pub max_depth: u64,
    /// Virtual cycles spent initializing (metadata load, §9.2 "≈21 ms").
    pub init_cycles: u64,
    /// Call-Type verdicts served from the verification cache.
    pub ct_cache_hits: u64,
    /// Stack-walk verdicts served from the verification cache.
    pub walk_cache_hits: u64,
    /// Frame heads fetched with one batched remote read instead of two.
    pub batched_frame_reads: u64,
    /// Pointee buffers fetched with one batched remote read instead of a
    /// per-byte loop.
    pub batched_pointee_reads: u64,
}

impl MonitorStats {
    /// Average stack-walk depth per trap.
    pub fn avg_depth(&self) -> f64 {
        if self.traps == 0 {
            0.0
        } else {
            self.frames_walked as f64 / self.traps as f64
        }
    }

    /// Total violations across contexts.
    pub fn violations(&self) -> u64 {
        self.ct_violations + self.cf_violations + self.ai_violations
    }
}

/// Information the monitor learns at launch time about the loaded image
/// (symbol addresses and memory geometry — the paper's "ELF, DWARF, and
/// linked library file information").
#[derive(Debug, Clone, Default)]
pub struct LaunchInfo {
    /// Load bias: runtime code base − metadata link base.
    pub load_bias: i64,
    /// Global symbol name → runtime address.
    pub globals: HashMap<String, u64>,
    /// Valid stack range `[base, top)`.
    pub stack: (u64, u64),
    /// Data segment range `[base, end)`.
    pub data: (u64, u64),
}

impl LaunchInfo {
    /// Gathers launch info from a loaded image (the monitor "retrieves
    /// ELF, DWARF, and linked library file information to recover symbol
    /// addresses", §7.1).
    pub fn from_image(image: &bastion_vm::Image, metadata: &ContextMetadata) -> Self {
        let load_bias = image.layout.code_base().raw() as i64 - metadata.link_base as i64;
        let globals = image
            .module
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.clone(), image.global_addrs[i]))
            .collect();
        LaunchInfo {
            load_bias,
            globals,
            stack: (image.stack_base, image.stack_top),
            data: (image.data_base, image.data_end),
        }
    }
}

/// Launches BASTION protection for `pid` in `world`: builds the seccomp
/// filter from call-type metadata, attaches a [`Monitor`] as the tracer,
/// and charges the monitor's initialization cost (§9.2 measures ≈21 ms)
/// to the world clock.
pub fn protect(
    world: &mut bastion_kernel::World,
    pid: bastion_kernel::Pid,
    image: &bastion_vm::Image,
    metadata: &ContextMetadata,
    cfg: ContextConfig,
) {
    // "Hook only" (Table 7 row 1) measures the seccomp cost in isolation:
    // the filter is installed (not-callable syscalls still die) but
    // sensitive syscalls are not stopped for the monitor.
    let trace = cfg.verifies() || cfg.fetch_state;
    let info = LaunchInfo::from_image(image, metadata);
    let monitor = Monitor::new(metadata, cfg, info);
    world.trace_cycles += monitor.stats.init_cycles;
    let filter = filter::build_filter_with_trace(metadata, trace);
    world.install_seccomp(pid, filter.shared(), trace);
    if trace {
        world.attach_tracer(Box::new(monitor));
    }
}

/// The BASTION runtime monitor.
#[derive(Debug)]
pub struct Monitor {
    /// Rebased metadata (runtime addresses).
    pub md: ContextMetadata,
    /// Enabled contexts.
    pub cfg: ContextConfig,
    /// Launch-time image information.
    pub info: LaunchInfo,
    /// Statistics.
    pub stats: MonitorStats,
    /// Trap log: (nr, verdict ok?) for diagnostics and tests.
    pub log: Vec<(u32, bool)>,
    /// Fast-path verification cache (interior mutability: verification
    /// runs behind a shared borrow of the monitor).
    pub cache: std::cell::RefCell<cache::VerifyCache>,
}

impl Monitor {
    /// Creates a monitor from compiler metadata and launch-time info.
    ///
    /// Initialization cost is proportional to the metadata size (the paper
    /// measures ≈21 ms for NGINX); it is recorded in
    /// [`MonitorStats::init_cycles`] and added to the world clock by the
    /// harness at attach time.
    pub fn new(metadata: &ContextMetadata, cfg: ContextConfig, info: LaunchInfo) -> Self {
        let md = metadata.rebased(info.load_bias);
        let init_cycles = 200
            + 10 * (md.callsites.len() as u64)
            + 20 * (md.functions.len() as u64)
            + 15 * (md.syscall_sites.len() as u64);
        Monitor {
            md,
            cfg,
            info,
            stats: MonitorStats {
                init_cycles,
                ..MonitorStats::default()
            },
            log: Vec::new(),
            cache: std::cell::RefCell::new(cache::VerifyCache::new()),
        }
    }

    fn deny(&mut self, ctx: ContextKind, nr: u32, what: &str) -> TraceVerdict {
        match ctx {
            ContextKind::CallType => self.stats.ct_violations += 1,
            ContextKind::ControlFlow => self.stats.cf_violations += 1,
            ContextKind::ArgIntegrity => self.stats.ai_violations += 1,
        }
        self.log.push((nr, false));
        TraceVerdict::Deny(format!("{}: {}", ctx.label(), what))
    }
}

impl Tracer for Monitor {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_trap(&mut self, tracee: &mut Tracee<'_>) -> TraceVerdict {
        self.stats.traps += 1;
        let regs = tracee.getregs();
        let nr = regs.nr;

        // Hook-only configuration: pay the stop, touch nothing else.
        if !self.cfg.verifies() && !self.cfg.fetch_state {
            self.log.push((nr, true));
            return TraceVerdict::Allow;
        }
        // Fetch-state configuration: pay for register and stack fetches
        // without verifying (Table 7 row 2).
        if !self.cfg.verifies() {
            let _ = verify::fetch_only(self, tracee, &regs);
            self.log.push((nr, true));
            return TraceVerdict::Allow;
        }

        let verdict = match verify::verify_trap(self, tracee, &regs) {
            Ok(depth) => {
                // Depth 0 is a walk-free verdict (CT-only traps); it must
                // not pollute the §9.2 depth statistics.
                if depth > 0 {
                    self.stats.frames_walked += depth;
                    if self.stats.min_depth == 0 || depth < self.stats.min_depth {
                        self.stats.min_depth = depth;
                    }
                    self.stats.max_depth = self.stats.max_depth.max(depth);
                }
                self.log.push((nr, true));
                TraceVerdict::Allow
            }
            Err((ctx, msg)) => self.deny(ctx, nr, &msg),
        };
        let c = self.cache.borrow();
        self.stats.ct_cache_hits = c.ct_hits;
        self.stats.walk_cache_hits = c.walk_hits;
        self.stats.batched_frame_reads = c.batched_frame_reads;
        self.stats.batched_pointee_reads = c.batched_pointee_reads;
        drop(c);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets() {
        assert!(ContextConfig::full().arg_integrity);
        assert!(!ContextConfig::ct().control_flow);
        assert!(ContextConfig::ct_cf().control_flow);
        let h = ContextConfig::hook_only();
        assert!(!h.call_type && !h.control_flow && !h.arg_integrity);
    }

    #[test]
    fn stats_avg_depth() {
        let mut s = MonitorStats::default();
        assert_eq!(s.avg_depth(), 0.0);
        s.traps = 4;
        s.frames_walked = 20;
        assert_eq!(s.avg_depth(), 5.0);
        s.ct_violations = 1;
        s.ai_violations = 2;
        assert_eq!(s.violations(), 3);
    }

    #[test]
    fn min_depth_is_zero_before_any_walk() {
        // A freshly created monitor (and one that only ever sees walk-free
        // CT verdicts) must report min_depth 0, not a u64::MAX sentinel —
        // including through serialization.
        let md = bastion_compiler::ContextMetadata::default();
        let m = Monitor::new(&md, ContextConfig::ct(), LaunchInfo::default());
        assert_eq!(m.stats.min_depth, 0);
        let json = serde_json::to_string(&m.stats).unwrap();
        assert!(
            !json.contains("18446744073709551615"),
            "sentinel leaked: {json}"
        );
    }

    #[test]
    fn fast_path_toggle() {
        assert!(ContextConfig::full().fast_path);
        let slow = ContextConfig::full().without_fast_path();
        assert!(!slow.fast_path);
        assert!(slow.arg_integrity, "other fields untouched");
    }

    #[test]
    fn context_labels() {
        assert_eq!(ContextKind::CallType.label(), "CT");
        assert_eq!(ContextKind::ControlFlow.label(), "CF");
        assert_eq!(ContextKind::ArgIntegrity.label(), "AI");
    }
}
