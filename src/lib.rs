//! # bastion-suite
//!
//! Workspace umbrella for the BASTION reproduction: hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). The actual library lives in the [`bastion`] crate; this
//! shim re-exports it so examples and tests read naturally.

pub use bastion::*;
